// dopf_verify — machine-checkable correctness gate for the distributed OPF
// solvers. Modes:
//
//   golden (default): run one execution backend under the pinned golden
//     profile and diff the trace byte-for-byte against the committed golden
//     file, then check the backend-independent invariants of the final
//     state. `--record` (re)writes the golden file instead of comparing.
//   --mutate: self-test. Injects a deliberate kernel perturbation and runs
//     the same comparison; the run MUST be detected (non-zero exit), which
//     proves the harness has teeth.
//   --fuzz N: property-based differential fuzzing over seeded random
//     feeders (see src/verify/fuzzer.hpp).
//   --adversarial N: run N seeded adversarial mutants (scale disparity,
//     duplicated/near-duplicate rows, inverted/degenerate boxes, orphaned
//     phases, non-finite data) through preflight + solve; every case must
//     end solved or rejected-with-diagnostic, never NaN/crash (see
//     src/verify/adversarial.hpp).
//   --backend multigpu [--faults SPEC]: run the simulated multi-device
//     solver — optionally under an injected fault schedule — and require the
//     recovered run to reproduce the fault-free golden trace byte-for-byte.
//   --resume FILE: restore a checkpoint and verify the resumed run
//     reproduces the golden trace from the restart point onward.
//   --record-checkpoint K: run the serial solver, capture the state after
//     iteration K, and write <golden-dir>/<network>.ckpt.
//
// Usage:
//   dopf_verify [options]
//   --network NAME|FILE   builtin (ieee13, ieee123, ieee8500_mini, ieee8500)
//                         or a feeder file (default ieee13)
//   --backend B           serial (default) | threaded | simt | multigpu
//   --threads N           worker threads for --backend threaded
//   --devices N           simulated devices for --backend multigpu (default 3)
//   --faults SPEC         fault schedule for multigpu (runtime/fault.hpp)
//   --no-recovery         disable failover + message CRC verification
//   --degrade             enable graceful degradation (multigpu only). The
//                         trace is then held against the golden SOLUTION
//                         within --tol instead of byte-for-byte: degraded
//                         trajectories legitimately diverge bitwise but
//                         must converge to the same answer (TESTING.md)
//   --staleness-bound S   degraded-device staleness bound (implies --degrade)
//   --watchdog            enable the convergence watchdog during the run
//   --checkpoint-every N  multigpu restart-point refresh interval (default 50
//                         when faults are injected)
//   --resume FILE         restore FILE, then verify the post-restart suffix
//   --record-checkpoint K write <golden-dir>/<network>.ckpt at iteration K
//   --golden FILE         golden trace path (overrides --golden-dir)
//   --golden-dir DIR      directory holding <network>.trace files
//                         (default: $DOPF_GOLDEN_DIR, else search for
//                         tests/golden upward from the working directory)
//   --record              write the golden trace for this run and exit
//   --reference           also check KKT stationarity / objective gap
//                         against the interior-point reference
//   --tol T               tolerance for --reference checks (default 5e-2)
//   --mutate              inject the kernel perturbation self-test
//   --fuzz N --seed S     run N fuzz cases starting at seed S
//   --adversarial N       run N adversarial mutants starting at seed S
//   --preflight MODE      preflight policy before golden runs: off | warn
//                         (default) | auto | strict. A rejection is an
//                         input error (exit 1) with the full report
//   --session             run through the explicit session layers
//                         (SolveModel -> ScenarioBinding -> SolveSession)
//                         instead of the single-shot wrapper; the trace must
//                         still match the committed golden byte-for-byte.
//                         Not available with --backend multigpu or --resume
//
// Exit codes: 0 = verified, 1 = usage/infrastructure error,
//             2 = verification failure (divergence or invariant violation).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/stat.h>

#include "core/admm.hpp"
#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "core/solve_session.hpp"
#include "feeders/feeder_io.hpp"
#include "opf/validate.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "runtime/instances.hpp"
#include "runtime/threaded_backend.hpp"
#include "simt/multi_gpu.hpp"
#include "simt/simt_backend.hpp"
#include "robust/preflight.hpp"
#include "solver/reference.hpp"
#include "verify/adversarial.hpp"
#include "verify/fuzzer.hpp"
#include "verify/invariants.hpp"
#include "verify/mutation.hpp"
#include "verify/trace.hpp"

namespace {

const char* g_argv0 = "dopf_verify";

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --network NAME|FILE  --backend serial|threaded|simt|multigpu\n"
      "  --threads N  --devices N\n"
      "  --faults SPEC  --no-recovery  --checkpoint-every N\n"
      "  --degrade  --staleness-bound S  --watchdog\n"
      "  --resume FILE  --record-checkpoint K\n"
      "  --golden FILE | --golden-dir DIR  --record\n"
      "  --reference  --tol T  --mutate\n"
      "  --fuzz N  --adversarial N  --seed S\n"
      "  --preflight off|warn|auto|strict  --session\n",
      argv0);
  std::exit(1);
}

/// Strict numeric parsing: reject trailing junk ("1abc") with a pointed
/// diagnostic plus the usage text, exit 1.
int parse_int(const char* arg, const char* what) {
  char* end = nullptr;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad integer value '%s' for %s\n", g_argv0, arg,
                 what);
    usage(g_argv0);
  }
  return static_cast<int>(v);
}

double parse_double(const char* arg, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad numeric value '%s' for %s\n", g_argv0, arg,
                 what);
    usage(g_argv0);
  }
  return v;
}

std::uint64_t parse_u64(const char* arg, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "%s: bad integer value '%s' for %s\n", g_argv0, arg,
                 what);
    usage(g_argv0);
  }
  return v;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool is_builtin(const std::string& name) {
  for (const char* b : {"ieee13", "ieee123", "ieee8500", "ieee8500_mini",
                        "ieee13_overload"}) {
    if (name == b) return true;
  }
  return false;
}

/// Default golden directory: $DOPF_GOLDEN_DIR, else tests/golden searched
/// upward from the working directory (covers running from the repo root,
/// build/, or build/tools/).
std::string default_golden_dir() {
  if (const char* env = std::getenv("DOPF_GOLDEN_DIR")) return env;
  std::string prefix;
  for (int depth = 0; depth < 4; ++depth) {
    const std::string candidate = prefix + "tests/golden";
    if (file_exists(candidate)) return candidate;
    prefix += "../";
  }
  return "tests/golden";
}

std::unique_ptr<dopf::core::ExecutionBackend> make_backend(
    const std::string& name, int threads) {
  if (name == "serial") return nullptr;  // SolverFreeAdmm's built-in default
  if (name == "threaded") return dopf::runtime::make_threaded_backend(threads);
  if (name == "simt") return std::make_unique<dopf::simt::SimtBackend>();
  std::fprintf(stderr, "unknown backend '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  g_argv0 = argv[0];
  std::string network = "ieee13", backend = "serial";
  std::string golden_file, golden_dir;
  std::string fault_spec, resume_file;
  int threads = 4;
  int devices = 3;
  int checkpoint_every = 0;
  int record_checkpoint_at = 0;
  int staleness_bound = -1;  // -1 = policy default
  bool record = false, reference = false, mutate = false, no_recovery = false;
  bool degrade = false, watchdog = false;
  int fuzz_cases = 0;
  int adversarial_cases = 0;
  std::uint64_t seed = 20250807;
  bool seed_set = false;
  std::string preflight_mode = "warn";
  bool session = false;
  double tol = 5e-2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s expects a value\n", argv[0], arg.c_str());
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (arg == "--network") {
      network = next();
    } else if (arg == "--backend") {
      backend = next();
    } else if (arg == "--threads") {
      threads = parse_int(next(), "--threads");
    } else if (arg == "--devices") {
      devices = parse_int(next(), "--devices");
    } else if (arg == "--faults") {
      fault_spec = next();
    } else if (arg == "--no-recovery") {
      no_recovery = true;
    } else if (arg == "--degrade") {
      degrade = true;
    } else if (arg == "--staleness-bound") {
      staleness_bound = parse_int(next(), "--staleness-bound");
      degrade = true;
    } else if (arg == "--watchdog") {
      watchdog = true;
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = parse_int(next(), "--checkpoint-every");
    } else if (arg == "--resume") {
      resume_file = next();
    } else if (arg == "--record-checkpoint") {
      record_checkpoint_at = parse_int(next(), "--record-checkpoint");
    } else if (arg == "--golden") {
      golden_file = next();
    } else if (arg == "--golden-dir") {
      golden_dir = next();
    } else if (arg == "--record") {
      record = true;
    } else if (arg == "--reference") {
      reference = true;
    } else if (arg == "--tol") {
      tol = parse_double(next(), "--tol");
    } else if (arg == "--mutate") {
      mutate = true;
    } else if (arg == "--fuzz") {
      fuzz_cases = parse_int(next(), "--fuzz");
    } else if (arg == "--adversarial") {
      adversarial_cases = parse_int(next(), "--adversarial");
    } else if (arg == "--preflight") {
      preflight_mode = next();
    } else if (arg == "--session") {
      session = true;
    } else if (arg == "--seed") {
      seed = parse_u64(next(), "--seed");
      seed_set = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "%s: unknown option %s\n", argv[0], arg.c_str());
      usage(argv[0]);
    }
  }
  if (!fault_spec.empty() && backend != "multigpu") {
    std::fprintf(stderr, "%s: --faults requires --backend multigpu\n",
                 argv[0]);
    return 1;
  }
  if (mutate && backend == "multigpu") {
    std::fprintf(stderr, "%s: --mutate is not supported with multigpu\n",
                 argv[0]);
    return 1;
  }
  if (degrade && backend != "multigpu") {
    std::fprintf(stderr,
                 "%s: --degrade/--staleness-bound require --backend multigpu\n",
                 argv[0]);
    return 1;
  }
  if (record_checkpoint_at < 0 || checkpoint_every < 0 || devices < 1) {
    std::fprintf(stderr, "%s: negative/zero count argument\n", argv[0]);
    usage(argv[0]);
  }
  if (session && (backend == "multigpu" || !resume_file.empty())) {
    std::fprintf(
        stderr, "%s: --session is not supported with multigpu or --resume\n",
        argv[0]);
    return 1;
  }

  try {
    if (fuzz_cases > 0) {
      dopf::verify::FuzzOptions options;
      options.num_cases = fuzz_cases;
      options.base_seed = seed;
      options.threads = threads;
      const dopf::verify::FuzzReport report = dopf::verify::run_fuzz(options);
      std::printf("%s", report.summary().c_str());
      return report.ok() ? 0 : 2;
    }

    if (adversarial_cases > 0) {
      dopf::verify::AdversarialOptions options;
      options.num_cases = adversarial_cases;
      if (seed_set) options.base_seed = seed;
      const dopf::verify::AdversarialReport report =
          dopf::verify::run_adversarial(options);
      std::printf("%s", report.summary().c_str());
      return report.ok() ? 0 : 2;
    }

    // --- Golden-trace mode.
    dopf::network::Network net;
    std::string label = network;
    if (is_builtin(network)) {
      net = dopf::runtime::make_instance(network).net;
    } else {
      net = dopf::feeders::load_feeder(network);
      const std::size_t slash = network.find_last_of('/');
      label = slash == std::string::npos ? network : network.substr(slash + 1);
    }
    const dopf::opf::OpfModel model = dopf::opf::build_model(net);

    // Preflight gate (default warn): an input failing sanitation or — under
    // strict — conditioning never reaches the golden comparison; that is an
    // input error, not a verification failure. Under warn/strict the
    // accepted decomposition is identical to a plain decompose(), so golden
    // traces stay byte-for-byte.
    dopf::opf::DistributedProblem problem;
    if (preflight_mode != "off") {
      dopf::robust::PreflightOptions popt;
      popt.policy = dopf::robust::parse_policy(preflight_mode);
      const dopf::robust::PreflightReport pre =
          dopf::robust::run_preflight(net, model, &problem, popt);
      if (!pre.accepted) {
        std::fprintf(stderr, "%s", pre.summary().c_str());
        return 1;
      }
    } else {
      problem = dopf::opf::decompose(net, model);
    }

    if (golden_dir.empty()) golden_dir = default_golden_dir();
    if (golden_file.empty()) golden_file = golden_dir + "/" + label + ".trace";

    const dopf::core::AdmmOptions profile = dopf::verify::golden_profile();

    // --record-checkpoint K: capture the serial golden-profile state after
    // exactly iteration K and write the refresh-able committed checkpoint.
    if (record_checkpoint_at > 0) {
      const std::string ckpt_path = golden_dir + "/" + label + ".ckpt";
      dopf::core::SolverFreeAdmm admm(problem, profile);
      bool written = false;
      admm.set_checkpoint_hook(
          record_checkpoint_at,
          [&](const dopf::core::SolverFreeAdmm& solver, int iteration) {
            if (iteration != record_checkpoint_at) return;
            dopf::runtime::save_checkpoint(
                dopf::runtime::AdmmCheckpoint::capture(solver, iteration,
                                                       label),
                ckpt_path);
            written = true;
          });
      const dopf::core::AdmmResult result = admm.solve();
      if (!written) {
        std::fprintf(stderr,
                     "checkpoint iteration %d never reached (run ended at "
                     "%d)\n",
                     record_checkpoint_at, result.iterations);
        return 1;
      }
      std::printf("checkpoint at iteration %d written to %s\n",
                  record_checkpoint_at, ckpt_path.c_str());
      return 0;
    }

    // Restart point for --resume: only golden-trace records strictly after
    // the checkpoint iteration are expected from the resumed run.
    int resume_from = 0;
    dopf::runtime::AdmmCheckpoint resume_ck;
    if (!resume_file.empty()) {
      resume_ck = dopf::runtime::load_checkpoint(resume_file);
      resume_from = resume_ck.iteration;
    }

    // --- Run the requested execution path.
    dopf::core::AdmmResult result;
    std::vector<double> final_x, final_z;
    std::string backend_label = backend;
    dopf::core::AdmmOptions run_profile = profile;
    run_profile.watchdog = watchdog;
    if (backend == "multigpu") {
      dopf::simt::MultiGpuOptions mo;
      mo.gpu.admm = run_profile;
      mo.num_devices = static_cast<std::size_t>(devices);
      mo.faults = dopf::runtime::FaultPlan::parse(fault_spec);
      if (no_recovery) {
        mo.recovery.failover = false;
        mo.recovery.verify_messages = false;
      }
      mo.checkpoint_every =
          checkpoint_every > 0 ? checkpoint_every
                               : (mo.faults.empty() ? 0 : 50);
      mo.label = label;
      mo.degrade.enabled = degrade;
      if (staleness_bound >= 0) mo.degrade.staleness_bound = staleness_bound;
      backend_label = "multigpu(" + std::to_string(mo.num_devices) + ")";
      dopf::simt::MultiGpuSolverFreeAdmm admm(problem, mo);
      if (!resume_file.empty()) admm.restore_state(resume_ck);
      result = admm.solve();
      final_x.assign(admm.x().begin(), admm.x().end());
      final_z.assign(admm.z().begin(), admm.z().end());
      if (!fault_spec.empty()) {
        std::printf(
            "faults injected: %s\n"
            "recovery: %d failover(s), %d message retr%s, %zu/%zu devices "
            "alive, %.2e simulated recovery seconds\n",
            mo.faults.to_string().c_str(), admm.failovers(),
            admm.message_retries(),
            admm.message_retries() == 1 ? "y" : "ies", admm.alive_devices(),
            admm.num_devices(), admm.recovery_seconds());
      }
      if (degrade) {
        std::printf(
            "degraded mode: %d degraded iteration(s), %d quarantine(s), "
            "%d readmission(s), %.2e simulated degrade seconds\n",
            admm.degraded_iterations(), admm.quarantines(),
            admm.readmissions(), admm.degrade_seconds());
      }
    } else if (session) {
      // Explicit session layers: the packed image the session binds must be
      // bit-identical to the single-shot wrapper's, so the golden trace
      // still matches byte-for-byte.
      dopf::core::SolveModel solve_model(problem, run_profile.projector);
      dopf::core::ScenarioBinding binding(solve_model);
      dopf::core::SolveSession sess(binding, run_profile);
      {
        auto exec = make_backend(backend, threads);
        if (mutate) {
          if (!exec) exec = dopf::core::make_serial_backend();
          exec = dopf::verify::make_mutant_backend(std::move(exec));
          backend_label = "mutant(" + backend + ")";
        }
        if (exec) sess.set_backend(std::move(exec));
      }
      backend_label += "+session";
      result = sess.solve();
      final_x.assign(sess.solver().x().begin(), sess.solver().x().end());
      final_z.assign(sess.solver().z().begin(), sess.solver().z().end());
    } else {
      dopf::core::SolverFreeAdmm admm(problem, run_profile);
      {
        auto exec = make_backend(backend, threads);
        if (mutate) {
          if (!exec) exec = dopf::core::make_serial_backend();
          exec = dopf::verify::make_mutant_backend(std::move(exec));
          backend_label = "mutant(" + backend + ")";
        }
        if (exec) admm.set_backend(std::move(exec));
      }
      if (!resume_file.empty()) resume_ck.restore(&admm);
      result = admm.solve();
      final_x.assign(admm.x().begin(), admm.x().end());
      final_z.assign(admm.z().begin(), admm.z().end());
    }
    const dopf::verify::Trace trace = dopf::verify::Trace::from_result(
        result, profile, label, backend_label);
    std::printf("%s: %s backend, %s in %d iterations, objective %.8f\n",
                label.c_str(), backend_label.c_str(),
                dopf::core::to_string(result.status), result.iterations,
                result.objective);
    if (resume_from > 0) {
      std::printf("resumed from %s (iteration %d)\n", resume_file.c_str(),
                  resume_from);
    }

    if (record) {
      if (mutate) {
        std::fprintf(stderr, "refusing to record a mutated golden trace\n");
        return 1;
      }
      if (!fault_spec.empty() || resume_from > 0) {
        std::fprintf(stderr,
                     "refusing to record a faulted or resumed golden trace\n");
        return 1;
      }
      dopf::verify::save_trace(trace, golden_file);
      std::printf("golden trace written to %s (%zu history records)\n",
                  golden_file.c_str(), trace.history.size());
      return 0;
    }

    int verdict = 0;

    // 1. Comparison against the committed golden file. The default is
    //    byte-for-byte; a resumed run only re-records the post-restart
    //    samples, so it is held against the matching suffix of the golden
    //    history. A DEGRADED run is different: stale iterations make the
    //    trajectory legitimately diverge bitwise, so only the solution it
    //    converges to is held against the golden anchor, within --tol.
    dopf::verify::Trace golden = dopf::verify::load_trace(golden_file);
    if (degrade) {
      if (!result.converged) {
        std::fprintf(stderr, "DEGRADED RUN DID NOT CONVERGE: status %s\n",
                     dopf::core::to_string(result.status));
        verdict = 2;
      } else if (golden.x.size() != final_x.size()) {
        std::fprintf(stderr,
                     "DEGRADED SOLUTION MISMATCH: %zu vs %zu variables\n",
                     golden.x.size(), final_x.size());
        verdict = 2;
      } else {
        double worst = std::abs(golden.objective - result.objective) /
                       std::max(1.0, std::abs(golden.objective));
        std::size_t worst_i = final_x.size();  // sentinel: objective
        for (std::size_t i = 0; i < final_x.size(); ++i) {
          const double err =
              std::abs(golden.x[i] - final_x[i]) /
              std::max({1.0, std::abs(golden.x[i]), std::abs(final_x[i])});
          if (err > worst) {
            worst = err;
            worst_i = i;
          }
        }
        if (worst > tol) {
          std::fprintf(
              stderr,
              "DEGRADED SOLUTION MISMATCH: worst relative error %.3e at %s "
              "exceeds tolerance %.1e\n",
              worst,
              worst_i < final_x.size()
                  ? ("x[" + std::to_string(worst_i) + "]").c_str()
                  : "objective",
              tol);
          verdict = 2;
        } else {
          std::printf(
              "golden solution %s: degraded run matches within %.1e "
              "(worst relative error %.3e)\n",
              golden_file.c_str(), tol, worst);
        }
      }
    } else {
      if (resume_from > 0) {
        golden = dopf::verify::trace_suffix(golden, resume_from);
      }
      const dopf::verify::TraceDiff diff =
          dopf::verify::compare_traces(golden, trace, 0.0);
      if (diff.identical) {
        std::printf("golden trace %s: byte-for-byte match (%zu records%s)\n",
                    golden_file.c_str(), golden.history.size(),
                    resume_from > 0 ? ", post-restart suffix" : "");
      } else {
        std::fprintf(stderr, "GOLDEN TRACE MISMATCH (%s):\n  %s\n",
                     golden_file.c_str(), diff.message.c_str());
        verdict = 2;
      }
    }

    // 2. Backend-independent invariants of the final state.
    dopf::verify::InvariantReport invariants =
        dopf::verify::check_invariants(problem, final_x, final_z);
    dopf::verify::add_model_check(model, final_x, &invariants);

    // 3. Optional: KKT stationarity/objective gap vs the centralized
    //    interior-point reference, plus the physics-level validation.
    dopf::verify::InvariantOptions inv_options;
    inv_options.kkt_tol = tol;
    inv_options.objective_tol = tol;
    inv_options.consensus_tol = tol;
    inv_options.model_residual_tol = tol;
    if (reference) {
      const dopf::solver::LpSolution ref = dopf::solver::reference_solve(model);
      if (ref.status != dopf::solver::LpStatus::kOptimal) {
        std::fprintf(stderr, "reference solve failed: %s\n",
                     dopf::solver::to_string(ref.status));
        return 1;
      }
      dopf::verify::add_reference_check(model, final_x, ref, &invariants);
      const dopf::opf::ValidationReport physics =
          dopf::opf::validate_solution(net, model, final_x);
      std::printf("physics validation: worst %.3e (%s at %s)\n",
                  physics.worst(), physics.worst_check().c_str(),
                  physics.worst_site.c_str());
      if (!physics.ok(inv_options.model_residual_tol)) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATION: physics %s residual %.3e at %s "
                     "exceeds tolerance %.1e\n",
                     physics.worst_check().c_str(), physics.worst(),
                     physics.worst_site.c_str(),
                     inv_options.model_residual_tol);
        verdict = 2;
      }
    }
    std::printf("%s", invariants.to_string().c_str());
    const auto failures = invariants.failures(inv_options);
    for (const std::string& f : failures) {
      std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", f.c_str());
    }
    if (!failures.empty()) verdict = 2;

    if (verdict == 0) {
      std::printf("VERIFIED: %s on %s matches golden and satisfies all "
                  "invariants\n",
                  backend_label.c_str(), label.c_str());
    }
    return verdict;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
