// dopf_verify — machine-checkable correctness gate for the distributed OPF
// solvers. Three modes:
//
//   golden (default): run one execution backend under the pinned golden
//     profile and diff the trace byte-for-byte against the committed golden
//     file, then check the backend-independent invariants of the final
//     state. `--record` (re)writes the golden file instead of comparing.
//   --mutate: self-test. Injects a deliberate kernel perturbation and runs
//     the same comparison; the run MUST be detected (non-zero exit), which
//     proves the harness has teeth.
//   --fuzz N: property-based differential fuzzing over seeded random
//     feeders (see src/verify/fuzzer.hpp).
//
// Usage:
//   dopf_verify [options]
//   --network NAME|FILE   builtin (ieee13, ieee123, ieee8500_mini, ieee8500)
//                         or a feeder file (default ieee13)
//   --backend B           serial (default) | threaded | simt
//   --threads N           worker threads for --backend threaded
//   --golden FILE         golden trace path (overrides --golden-dir)
//   --golden-dir DIR      directory holding <network>.trace files
//                         (default: $DOPF_GOLDEN_DIR, else search for
//                         tests/golden upward from the working directory)
//   --record              write the golden trace for this run and exit
//   --reference           also check KKT stationarity / objective gap
//                         against the interior-point reference
//   --tol T               tolerance for --reference checks (default 5e-2)
//   --mutate              inject the kernel perturbation self-test
//   --fuzz N --seed S     run N fuzz cases starting at seed S
//
// Exit codes: 0 = verified, 1 = usage/infrastructure error,
//             2 = verification failure (divergence or invariant violation).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <sys/stat.h>

#include "core/admm.hpp"
#include "feeders/feeder_io.hpp"
#include "opf/validate.hpp"
#include "runtime/instances.hpp"
#include "runtime/threaded_backend.hpp"
#include "simt/simt_backend.hpp"
#include "solver/reference.hpp"
#include "verify/fuzzer.hpp"
#include "verify/invariants.hpp"
#include "verify/mutation.hpp"
#include "verify/trace.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --network NAME|FILE  --backend serial|threaded|simt  --threads N\n"
      "  --golden FILE | --golden-dir DIR  --record\n"
      "  --reference  --tol T  --mutate\n"
      "  --fuzz N  --seed S\n",
      argv0);
  std::exit(1);
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool is_builtin(const std::string& name) {
  for (const char* b : {"ieee13", "ieee123", "ieee8500", "ieee8500_mini"}) {
    if (name == b) return true;
  }
  return false;
}

/// Default golden directory: $DOPF_GOLDEN_DIR, else tests/golden searched
/// upward from the working directory (covers running from the repo root,
/// build/, or build/tools/).
std::string default_golden_dir() {
  if (const char* env = std::getenv("DOPF_GOLDEN_DIR")) return env;
  std::string prefix;
  for (int depth = 0; depth < 4; ++depth) {
    const std::string candidate = prefix + "tests/golden";
    if (file_exists(candidate)) return candidate;
    prefix += "../";
  }
  return "tests/golden";
}

std::unique_ptr<dopf::core::ExecutionBackend> make_backend(
    const std::string& name, int threads) {
  if (name == "serial") return nullptr;  // SolverFreeAdmm's built-in default
  if (name == "threaded") return dopf::runtime::make_threaded_backend(threads);
  if (name == "simt") return std::make_unique<dopf::simt::SimtBackend>();
  std::fprintf(stderr, "unknown backend '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string network = "ieee13", backend = "serial";
  std::string golden_file, golden_dir;
  int threads = 4;
  bool record = false, reference = false, mutate = false;
  int fuzz_cases = 0;
  std::uint64_t seed = 20250807;
  double tol = 5e-2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--network") {
      network = next();
    } else if (arg == "--backend") {
      backend = next();
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--golden") {
      golden_file = next();
    } else if (arg == "--golden-dir") {
      golden_dir = next();
    } else if (arg == "--record") {
      record = true;
    } else if (arg == "--reference") {
      reference = true;
    } else if (arg == "--tol") {
      tol = std::atof(next());
    } else if (arg == "--mutate") {
      mutate = true;
    } else if (arg == "--fuzz") {
      fuzz_cases = std::atoi(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  try {
    if (fuzz_cases > 0) {
      dopf::verify::FuzzOptions options;
      options.num_cases = fuzz_cases;
      options.base_seed = seed;
      options.threads = threads;
      const dopf::verify::FuzzReport report = dopf::verify::run_fuzz(options);
      std::printf("%s", report.summary().c_str());
      return report.ok() ? 0 : 2;
    }

    // --- Golden-trace mode.
    dopf::network::Network net;
    std::string label = network;
    if (is_builtin(network)) {
      net = dopf::runtime::make_instance(network).net;
    } else {
      net = dopf::feeders::load_feeder(network);
      const std::size_t slash = network.find_last_of('/');
      label = slash == std::string::npos ? network : network.substr(slash + 1);
    }
    const dopf::opf::OpfModel model = dopf::opf::build_model(net);
    const dopf::opf::DistributedProblem problem =
        dopf::opf::decompose(net, model);

    const dopf::core::AdmmOptions profile = dopf::verify::golden_profile();
    dopf::core::SolverFreeAdmm admm(problem, profile);
    std::string backend_label = backend;
    {
      auto exec = make_backend(backend, threads);
      if (mutate) {
        if (!exec) exec = dopf::core::make_serial_backend();
        exec = dopf::verify::make_mutant_backend(std::move(exec));
        backend_label = "mutant(" + backend + ")";
      }
      if (exec) admm.set_backend(std::move(exec));
    }
    const dopf::core::AdmmResult result = admm.solve();
    const dopf::verify::Trace trace = dopf::verify::Trace::from_result(
        result, profile, label, backend_label);
    std::printf("%s: %s backend, %s in %d iterations, objective %.8f\n",
                label.c_str(), backend_label.c_str(),
                dopf::core::to_string(result.status), result.iterations,
                result.objective);

    if (golden_file.empty()) {
      if (golden_dir.empty()) golden_dir = default_golden_dir();
      golden_file = golden_dir + "/" + label + ".trace";
    }

    if (record) {
      if (mutate) {
        std::fprintf(stderr, "refusing to record a mutated golden trace\n");
        return 1;
      }
      dopf::verify::save_trace(trace, golden_file);
      std::printf("golden trace written to %s (%zu history records)\n",
                  golden_file.c_str(), trace.history.size());
      return 0;
    }

    int verdict = 0;

    // 1. Byte-for-byte trace comparison against the committed golden file.
    const dopf::verify::Trace golden = dopf::verify::load_trace(golden_file);
    const dopf::verify::TraceDiff diff =
        dopf::verify::compare_traces(golden, trace, 0.0);
    if (diff.identical) {
      std::printf("golden trace %s: byte-for-byte match (%zu records)\n",
                  golden_file.c_str(), golden.history.size());
    } else {
      std::fprintf(stderr, "GOLDEN TRACE MISMATCH (%s):\n  %s\n",
                   golden_file.c_str(), diff.message.c_str());
      verdict = 2;
    }

    // 2. Backend-independent invariants of the final state.
    dopf::verify::InvariantReport invariants =
        dopf::verify::check_invariants(problem, admm.x(), admm.z());
    dopf::verify::add_model_check(model, admm.x(), &invariants);

    // 3. Optional: KKT stationarity/objective gap vs the centralized
    //    interior-point reference, plus the physics-level validation.
    dopf::verify::InvariantOptions inv_options;
    inv_options.kkt_tol = tol;
    inv_options.objective_tol = tol;
    inv_options.consensus_tol = tol;
    inv_options.model_residual_tol = tol;
    if (reference) {
      const dopf::solver::LpSolution ref = dopf::solver::reference_solve(model);
      if (ref.status != dopf::solver::LpStatus::kOptimal) {
        std::fprintf(stderr, "reference solve failed: %s\n",
                     dopf::solver::to_string(ref.status));
        return 1;
      }
      dopf::verify::add_reference_check(model, admm.x(), ref, &invariants);
      const dopf::opf::ValidationReport physics =
          dopf::opf::validate_solution(net, model, admm.x());
      std::printf("physics validation: worst %.3e (%s at %s)\n",
                  physics.worst(), physics.worst_check().c_str(),
                  physics.worst_site.c_str());
      if (!physics.ok(inv_options.model_residual_tol)) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATION: physics %s residual %.3e at %s "
                     "exceeds tolerance %.1e\n",
                     physics.worst_check().c_str(), physics.worst(),
                     physics.worst_site.c_str(),
                     inv_options.model_residual_tol);
        verdict = 2;
      }
    }
    std::printf("%s", invariants.to_string().c_str());
    const auto failures = invariants.failures(inv_options);
    for (const std::string& f : failures) {
      std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", f.c_str());
    }
    if (!failures.empty()) verdict = 2;

    if (verdict == 0) {
      std::printf("VERIFIED: %s on %s matches golden and satisfies all "
                  "invariants\n",
                  backend_label.c_str(), label.c_str());
    }
    return verdict;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
