#!/bin/sh
# Solve-server smoke: start dopf_serve on a scratch socket, drive a mixed
# request schedule through dopf_client, and drain with SIGTERM. Asserts:
#   - readiness ping answers
#   - a base solve converges and repeated identical requests coalesce onto
#     the cached model with byte-identical response lines
#   - a preflight-rejected request exits with the pinned code 5
#   - a deadline-exceeded request exits with the pinned code 6
#   - a malformed request exits with the pinned code 4
#   - SIGTERM drains cleanly: exit 0, no checkpoints left behind
#
# Usage: serve_smoke.sh <dopf_serve> <dopf_client> <scratch-dir>
set -eu

SERVE="$1"
CLIENT="$2"
DIR="$3"
work=$(mktemp -d "$DIR/serve_smoke.XXXXXX")
SOCK="$work/s.sock"
SRV_PID=""

# TERM -> bounded wait -> KILL: a wedged server must not wedge CI cleanup.
cleanup() {
  if [ -n "$SRV_PID" ]; then
    kill -TERM "$SRV_PID" 2>/dev/null || true
    for _ in 1 2 3 4 5 6 7 8 9 10; do
      kill -0 "$SRV_PID" 2>/dev/null || break
      sleep 0.2
    done
    kill -KILL "$SRV_PID" 2>/dev/null || true
    wait "$SRV_PID" 2>/dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

failures=0
fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

"$SERVE" --socket "$SOCK" --workers 2 --queue-depth 8 --no-fsync \
  > "$work/server.log" 2>&1 &
SRV_PID=$!

# Readiness: ping until the listener answers (the client retries connects
# internally, so a couple of attempts cover slow sandboxed startup).
ready=0
for _ in 1 2 3 4 5 6 7 8 9 10; do
  if "$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1; then
    ready=1
    break
  fi
  sleep 0.2
done
[ "$ready" = 1 ] || { cat "$work/server.log" >&2; \
  echo "FAIL: server never answered a readiness ping" >&2; exit 1; }

# Base solve: must converge (client exit 0, converged=1 on the line).
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 \
  > "$work/base.out" 2> "$work/base.err" \
  || fail "base solve exited $? (want 0)"
grep -q '^response id=1 status=converged converged=1 ' "$work/base.out" \
  || fail "base solve response line malformed: $(cat "$work/base.out")"

# Coalescing: three identical scenario requests must produce response lines
# that are byte-identical once the (deliberately distinct) ids are masked.
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 \
  --override "load * scale 1.05" --repeat 3 \
  > "$work/coalesce.out" 2> /dev/null \
  || fail "coalesced scenario solves exited $? (want 0)"
masked=$(sed 's/id=[0-9]*/id=N/' "$work/coalesce.out" | sort -u)
[ "$(printf '%s\n' "$masked" | wc -l)" = 1 ] \
  || fail "identical scenario requests returned differing responses"

# Preflight rejection: duplicated cost-scale overrides compose to an
# infinite cost, which scenario preflight refuses (pinned client exit 5).
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee13 --eps 1e-2 \
  --override "gen * cost-scale 1e200" --override "gen * cost-scale 1e200" \
  > "$work/preflight.out" 2> /dev/null || rc=$?
[ "$rc" = 5 ] || fail "preflight reject exited $rc (want 5)"
grep -q '^reject id=1 code=preflight ' "$work/preflight.out" \
  || fail "expected a typed preflight rejection: $(cat "$work/preflight.out")"

# Deadline: a 1 ms budget on a multi-second solve must come back as a
# typed deadline rejection (pinned client exit 6), not a late answer.
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:ieee123 --eps 1e-4 \
  --deadline-ms 1 > "$work/deadline.out" 2> /dev/null || rc=$?
[ "$rc" = 6 ] || fail "deadline reject exited $rc (want 6)"
grep -q '^reject id=1 code=deadline ' "$work/deadline.out" \
  || fail "expected a typed deadline rejection: $(cat "$work/deadline.out")"

# Malformed request: an unknown builtin is a bad-request rejection (4) —
# the connection survives it, which the next request proves.
rc=0
"$CLIENT" --socket "$SOCK" --feeder builtin:frobnicate \
  > "$work/bad.out" 2> /dev/null || rc=$?
[ "$rc" = 4 ] || fail "bad-request exited $rc (want 4)"
grep -q '^reject id=1 code=bad-request ' "$work/bad.out" \
  || fail "expected a typed bad-request rejection: $(cat "$work/bad.out")"
"$CLIENT" --socket "$SOCK" --ping > /dev/null 2>&1 \
  || fail "server unreachable after a bad request"

# Graceful drain: SIGTERM with nothing in flight is a clean exit 0.
kill -TERM "$SRV_PID"
rc=0
wait "$SRV_PID" || rc=$?
SRV_PID=""
[ "$rc" = 0 ] || { cat "$work/server.log" >&2; \
  fail "drain exited $rc (want 0)"; }
grep -q 'dopf_serve: drained' "$work/server.log" \
  || fail "server did not log its drain summary"

if [ "$failures" -gt 0 ]; then
  echo "serve smoke: $failures failure(s)" >&2
  exit 1
fi
echo "serve smoke: all checks passed"
