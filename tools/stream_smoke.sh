#!/bin/sh
# Streaming smoke: a short ieee13 receding-horizon stream through one
# SolveSession must (a) solve only the first step cold and every later step
# warm, (b) refactorize exactly the switched component (one impedance-scale
# event -> one refactorization), (c) converge warm in fewer total iterations
# than the same steps solved cold, and (d) write a replay record that is
# byte-identical across two runs.
#
# Usage: stream_smoke.sh <dopf_solve-binary> <scratch-dir>
set -eu

SOLVE="$1"
DIR="$2"
work=$(mktemp -d "$DIR/stream_smoke.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM
PROFILE="$work/stream_smoke.profile"
OUT="$work/stream_smoke.out"
REC1="$work/stream_smoke.rec1"
REC2="$work/stream_smoke.rec2"

cat > "$PROFILE" <<'EOF'
# Six 5-minute steps: a load dip, a load peak, and one switching event.
profile smoke
steps 6
dt 300
step 0
  load constant scale 0.95
step 2
  load constant scale 1.05
step 4
  load constant scale 1.00
  switch 632-645 impedance-scale 1.5
EOF

"$SOLVE" --stream "$PROFILE" --cold-compare --stream-record "$REC1" \
  builtin:ieee13 | tee "$OUT"

grep -q "session: 6 solve(s) (1 cold, 5 warm)" "$OUT" || {
  echo "FAIL: expected 1 cold + 5 warm solves for a 6-step stream" >&2
  exit 1
}
grep -q "1 component refactorization(s)" "$OUT" || {
  echo "FAIL: one switch event must cost exactly one refactorization" >&2
  exit 1
}

# Per-step lines read "... in W iterations (warm) vs C cold ..."; the
# warm-started stream must need fewer iterations in total.
awk '
  /\(warm\) vs [0-9]+ cold/ {
    for (i = 1; i <= NF; ++i) {
      if ($i == "in") warm += $(i + 1)
      if ($i == "vs") cold += $(i + 1)
    }
  }
  END {
    printf "stream smoke: warm %d vs cold %d total iterations\n", warm, cold
    if (warm <= 0 || warm >= cold) {
      print "FAIL: warm-started stream not faster than cold" > "/dev/stderr"
      exit 1
    }
  }' "$OUT"

# Replay determinism: a second run must serialize byte-identically.
"$SOLVE" --stream "$PROFILE" --cold-compare --stream-record "$REC2" \
  builtin:ieee13 > /dev/null
cmp "$REC1" "$REC2" || {
  echo "FAIL: stream replay records differ between two identical runs" >&2
  exit 1
}
echo "stream smoke: replay record byte-identical across runs"
