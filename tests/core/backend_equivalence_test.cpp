// Cross-backend bit-identity: the serial, threaded (any thread count), and
// SIMT execution backends run the same core::kernels expressions over the
// same packed pool with the same deterministic residual reduction, so the
// residual history and final iterate must be byte-identical — not merely
// close — on every instance.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/admm.hpp"
#include "core/backend.hpp"
#include "feeders/ieee13.hpp"
#include "feeders/synthetic.hpp"
#include "opf/decompose.hpp"
#include "runtime/threaded_backend.hpp"
#include "simt/gpu_admm.hpp"

namespace dopf::core {
namespace {

using dopf::opf::DistributedProblem;

AdmmOptions test_options(int iterations) {
  AdmmOptions opt;
  opt.max_iterations = iterations;
  opt.check_every = 1;   // residuals every iteration
  opt.record_every = 1;  // and all of them in the history
  opt.eps_rel = 0.0;     // never terminate: fixed-length trajectories
  return opt;
}

AdmmResult run_with_backend(const DistributedProblem& problem,
                            const AdmmOptions& opt,
                            std::unique_ptr<ExecutionBackend> backend) {
  SolverFreeAdmm admm(problem, opt);
  if (backend) admm.set_backend(std::move(backend));
  return admm.solve();
}

void expect_bit_identical(const AdmmResult& a, const AdmmResult& b,
                          const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t t = 0; t < a.history.size(); ++t) {
    const IterationRecord& ra = a.history[t];
    const IterationRecord& rb = b.history[t];
    ASSERT_EQ(ra.primal_residual, rb.primal_residual) << "iteration " << t;
    ASSERT_EQ(ra.dual_residual, rb.dual_residual) << "iteration " << t;
    ASSERT_EQ(ra.eps_primal, rb.eps_primal) << "iteration " << t;
    ASSERT_EQ(ra.eps_dual, rb.eps_dual) << "iteration " << t;
  }
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    ASSERT_EQ(a.x[i], b.x[i]) << "x[" << i << "]";
  }
}

void check_all_backends(const DistributedProblem& problem, int iterations) {
  const AdmmOptions opt = test_options(iterations);
  const AdmmResult serial = run_with_backend(problem, opt, nullptr);
  ASSERT_EQ(serial.history.size(), static_cast<std::size_t>(iterations));

  for (int threads : {1, 4, 16}) {
    const AdmmResult threaded = run_with_backend(
        problem, opt, dopf::runtime::make_threaded_backend(threads));
    expect_bit_identical(serial, threaded,
                         threads == 1   ? "threaded(1)"
                         : threads == 4 ? "threaded(4)"
                                        : "threaded(16)");
  }

  dopf::simt::GpuAdmmOptions gpu_opt;
  gpu_opt.admm = opt;
  dopf::simt::GpuSolverFreeAdmm gpu(problem, gpu_opt);
  const AdmmResult simt = gpu.solve();
  expect_bit_identical(serial, simt, "simt");
}

TEST(BackendEquivalenceTest, Ieee13ResidualHistoriesByteIdentical) {
  const dopf::network::Network net = dopf::feeders::ieee13();
  const DistributedProblem problem = dopf::opf::decompose(net);
  check_all_backends(problem, 60);
}

TEST(BackendEquivalenceTest, Ieee123ResidualHistoriesByteIdentical) {
  const dopf::network::Network net =
      dopf::feeders::synthetic_feeder(dopf::feeders::ieee123_spec());
  const DistributedProblem problem = dopf::opf::decompose(net);
  check_all_backends(problem, 40);
}

TEST(BackendEquivalenceTest, ThreadsExceedingComponentCountStayIdentical) {
  // More workers than components: most threads get an empty slice of the
  // packed pool and must contribute exactly nothing to the reduction.
  const dopf::network::Network net = dopf::feeders::ieee13();
  const DistributedProblem problem = dopf::opf::decompose(net);
  const AdmmOptions opt = test_options(25);
  const AdmmResult serial = run_with_backend(problem, opt, nullptr);
  const int oversubscribed = static_cast<int>(problem.num_components()) * 4 + 3;
  const AdmmResult threaded = run_with_backend(
      problem, opt, dopf::runtime::make_threaded_backend(oversubscribed));
  expect_bit_identical(serial, threaded, "threaded(4*components+3)");
}

TEST(BackendEquivalenceTest, SingleComponentProblemByteIdentical) {
  // Degenerate decomposition: one component owning every global variable.
  // min x0 + 0.5*x1  s.t.  x0 + x1 = 1,  x in [0,1]^2.
  DistributedProblem problem;
  problem.num_vars = 2;
  problem.c = {1.0, 0.5};
  problem.lb = {0.0, 0.0};
  problem.ub = {1.0, 1.0};
  problem.x0 = {0.0, 0.0};
  problem.copy_count = {1, 1};
  dopf::opf::Component comp;
  comp.name = "only";
  comp.a = dopf::linalg::Matrix{{1.0, 1.0}};
  comp.b = {1.0};
  comp.global = {0, 1};
  problem.components.push_back(std::move(comp));
  check_all_backends(problem, 40);
}

TEST(BackendEquivalenceTest, ZeroIterationSolveIsIdenticalAndInert) {
  // max_iterations = 0: no update may run; every backend must return the
  // initial iterate untouched, byte for byte.
  const dopf::network::Network net = dopf::feeders::ieee13();
  const DistributedProblem problem = dopf::opf::decompose(net);
  const AdmmOptions opt = test_options(0);

  const AdmmResult serial = run_with_backend(problem, opt, nullptr);
  EXPECT_EQ(serial.iterations, 0);
  EXPECT_TRUE(serial.history.empty());
  ASSERT_EQ(serial.x.size(), problem.num_vars);
  for (std::size_t i = 0; i < serial.x.size(); ++i) {
    ASSERT_EQ(serial.x[i], problem.x0[i]) << "x[" << i << "]";
  }

  const AdmmResult threaded = run_with_backend(
      problem, opt, dopf::runtime::make_threaded_backend(8));
  expect_bit_identical(serial, threaded, "threaded(8), zero iterations");

  dopf::simt::GpuAdmmOptions gpu_opt;
  gpu_opt.admm = opt;
  dopf::simt::GpuSolverFreeAdmm gpu(problem, gpu_opt);
  expect_bit_identical(serial, gpu.solve(), "simt, zero iterations");
}

TEST(BackendEquivalenceTest, BackendsReportTheirNames) {
  const dopf::network::Network net = dopf::feeders::ieee13();
  const DistributedProblem problem = dopf::opf::decompose(net);
  SolverFreeAdmm admm(problem, AdmmOptions{});
  EXPECT_STREQ(admm.backend().name(), "serial");
  admm.set_backend(dopf::runtime::make_threaded_backend(2));
  EXPECT_STREQ(admm.backend().name(), "threaded");
  admm.set_backend(nullptr);  // restores the built-in serial backend
  EXPECT_STREQ(admm.backend().name(), "serial");
}

}  // namespace
}  // namespace dopf::core
