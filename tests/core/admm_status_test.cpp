/// Tests for solver robustness: status reporting, time limits, and
/// divergence detection on ill-posed inputs.

#include <gtest/gtest.h>

#include <limits>

#include "baseline/benchmark_admm.hpp"
#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"

namespace dopf::core {
namespace {

const dopf::opf::DistributedProblem& problem() {
  static const auto net = dopf::feeders::ieee13();
  static const auto p = dopf::opf::decompose(net);
  return p;
}

TEST(AdmmStatusTest, ConvergedStatusReported) {
  AdmmOptions opt;
  SolverFreeAdmm admm(problem(), opt);
  const AdmmResult res = admm.solve();
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kConverged);
}

TEST(AdmmStatusTest, IterationLimitStatusReported) {
  AdmmOptions opt;
  opt.max_iterations = 5;
  SolverFreeAdmm admm(problem(), opt);
  const AdmmResult res = admm.solve();
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kIterationLimit);
  EXPECT_EQ(res.iterations, 5);
}

TEST(AdmmStatusTest, TimeLimitStops) {
  AdmmOptions opt;
  opt.max_iterations = 100000000;
  opt.time_limit_seconds = 0.05;
  SolverFreeAdmm admm(problem(), opt);
  const AdmmResult res = admm.solve();
  if (!res.converged) {  // on a slow machine it may legitimately converge
    EXPECT_EQ(res.status, AdmmStatus::kTimeLimit);
    EXPECT_LT(res.iterations, 100000000);
  }
}

TEST(AdmmStatusTest, BenchmarkTimeLimitStops) {
  AdmmOptions opt;
  opt.max_iterations = 100000000;
  opt.time_limit_seconds = 0.05;
  dopf::baseline::BenchmarkAdmm admm(problem(), opt);
  const AdmmResult res = admm.solve();
  if (!res.converged) {
    EXPECT_EQ(res.status, AdmmStatus::kTimeLimit);
  }
}

dopf::opf::DistributedProblem tiny_problem(double rhs) {
  // One component: x1 + x2 = rhs, with global bounds x in [0, 1]^2.
  dopf::opf::DistributedProblem p;
  p.num_vars = 2;
  p.c = {1.0, 1.0};
  p.lb = {0.0, 0.0};
  p.ub = {1.0, 1.0};
  p.x0 = {0.5, 0.5};
  dopf::opf::Component comp;
  comp.name = "eq";
  comp.a = dopf::linalg::Matrix{{1.0, 1.0}};
  comp.b = {rhs};
  comp.global = {0, 1};
  p.components.push_back(std::move(comp));
  p.copy_count = {1, 1};
  return p;
}

TEST(AdmmStatusTest, InfeasibleProblemDoesNotClaimConvergence) {
  // x1 + x2 = 4 conflicts with the box [0,1]^2: the primal residual is
  // bounded away from zero forever; the solver must stop at the iteration
  // limit without claiming success.
  const auto p = tiny_problem(4.0);
  AdmmOptions opt;
  opt.max_iterations = 2000;
  SolverFreeAdmm admm(p, opt);
  const AdmmResult res = admm.solve();
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kIterationLimit);
  EXPECT_GT(res.primal_residual, 0.1);
}

TEST(AdmmStatusTest, NonFiniteDataDetectedAsDiverged) {
  const auto p = tiny_problem(std::numeric_limits<double>::quiet_NaN());
  AdmmOptions opt;
  opt.max_iterations = 1000;
  SolverFreeAdmm admm(p, opt);
  const AdmmResult res = admm.solve();
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kDiverged);
  EXPECT_LT(res.iterations, 1000);
}

TEST(AdmmStatusTest, ExplodingRhoDetectedAsDiverged) {
  // rho at the edge of the double range overflows the dual residual and the
  // eps_dual scale (rho * ||z - z_prev||, rho * eps_rel * ||lambda||) to
  // infinity within a few iterations; the guard must flag divergence rather
  // than iterate on non-finite numbers or claim convergence.
  AdmmOptions opt;
  opt.rho = 1e308;
  opt.max_iterations = 1000;
  opt.check_every = 1;
  SolverFreeAdmm admm(problem(), opt);
  const AdmmResult res = admm.solve();
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kDiverged);
  EXPECT_LT(res.iterations, 1000);
}

TEST(AdmmStatusTest, TimeLimitRecordsPartialProgress) {
  // An infeasible problem can never converge, so a tight time limit MUST
  // fire; the result still carries the partial iteration count and the
  // residual records accumulated before the stop.
  const auto p = tiny_problem(4.0);
  AdmmOptions opt;
  opt.max_iterations = 100000000;
  opt.time_limit_seconds = 0.05;
  opt.check_every = 10;
  SolverFreeAdmm admm(p, opt);
  const AdmmResult res = admm.solve();
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kTimeLimit);
  EXPECT_GT(res.iterations, 0);
  EXPECT_LT(res.iterations, 100000000);
  ASSERT_FALSE(res.history.empty());
  EXPECT_LE(res.history.back().iteration, res.iterations);
  EXPECT_EQ(res.timing.iterations, res.iterations);
}

TEST(AdmmStatusTest, FeasibleTinyProblemConverges) {
  // Control for the two cases above: rhs = 1 is consistent with the box.
  const auto p = tiny_problem(1.0);
  AdmmOptions opt;
  SolverFreeAdmm admm(p, opt);
  const AdmmResult res = admm.solve();
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0] + res.x[1], 1.0, 1e-2);
}

TEST(AdmmWarmStartTest, WarmStartCutsResolveIterations) {
  // Solve, perturb every load by +5% (same layout), re-solve cold vs warm.
  auto net = dopf::feeders::ieee13();
  auto model = dopf::opf::build_model(net);
  auto p1 = dopf::opf::decompose(net, model);
  AdmmOptions opt;
  SolverFreeAdmm first(p1, opt);
  const AdmmResult base = first.solve();
  ASSERT_TRUE(base.converged);
  const std::vector<double> lambda(first.lambda().begin(),
                                   first.lambda().end());

  for (std::size_t l = 0; l < net.num_loads(); ++l) {
    auto& load = net.load_mutable(static_cast<int>(l));
    for (auto ph : load.phases.phases()) {
      load.p_ref[ph] *= 1.05;
      load.q_ref[ph] *= 1.05;
    }
  }
  auto model2 = dopf::opf::build_model(net);
  auto p2 = dopf::opf::decompose(net, model2);

  SolverFreeAdmm cold(p2, opt);
  const AdmmResult rc = cold.solve();
  SolverFreeAdmm warm(p2, opt);
  warm.warm_start(base.x, lambda);
  const AdmmResult rw = warm.solve();
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rw.converged);
  EXPECT_LT(rw.iterations, rc.iterations / 2);
  EXPECT_NEAR(rw.objective, rc.objective,
              0.02 * (1.0 + std::abs(rc.objective)));
}

TEST(AdmmWarmStartTest, SizeMismatchThrows) {
  AdmmOptions opt;
  SolverFreeAdmm admm(problem(), opt);
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(admm.warm_start(wrong), std::invalid_argument);
  std::vector<double> x(problem().num_vars, 0.0);
  std::vector<double> bad_lambda(5, 0.0);
  EXPECT_THROW(admm.warm_start(x, bad_lambda), std::invalid_argument);
}

TEST(AdmmAsyncTest, PartialParticipationStillConverges) {
  // With 70% of agents responding per round, consensus still forms — it
  // just takes more rounds than the synchronous algorithm.
  AdmmOptions sync;
  SolverFreeAdmm s(problem(), sync);
  const AdmmResult rs = s.solve();

  AdmmOptions async = sync;
  async.async_fraction = 0.7;
  async.max_iterations = 400000;
  SolverFreeAdmm a(problem(), async);
  const AdmmResult ra = a.solve();

  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(ra.converged);
  EXPECT_GT(ra.iterations, rs.iterations);
  EXPECT_NEAR(ra.objective, rs.objective,
              0.05 * (1.0 + std::abs(rs.objective)));
}

TEST(AdmmAsyncTest, DeterministicForFixedSeed) {
  AdmmOptions opt;
  opt.async_fraction = 0.5;
  opt.max_iterations = 200;
  opt.check_every = 1000;
  SolverFreeAdmm a(problem(), opt);
  SolverFreeAdmm b(problem(), opt);
  const AdmmResult ra = a.solve();
  const AdmmResult rb = b.solve();
  for (std::size_t i = 0; i < ra.x.size(); ++i) {
    ASSERT_EQ(ra.x[i], rb.x[i]);
  }
}

TEST(AdmmAsyncTest, DifferentSeedsDiffer) {
  AdmmOptions opt;
  opt.async_fraction = 0.5;
  opt.max_iterations = 200;
  opt.check_every = 1000;
  SolverFreeAdmm a(problem(), opt);
  opt.async_seed = 2;
  SolverFreeAdmm b(problem(), opt);
  const AdmmResult ra = a.solve();
  const AdmmResult rb = b.solve();
  bool differs = false;
  for (std::size_t i = 0; i < ra.x.size() && !differs; ++i) {
    differs = ra.x[i] != rb.x[i];
  }
  EXPECT_TRUE(differs);
}

TEST(AdmmAsyncTest, FullParticipationMatchesSynchronousExactly) {
  AdmmOptions opt;
  opt.max_iterations = 100;
  opt.check_every = 1000;
  SolverFreeAdmm sync(problem(), opt);
  opt.async_fraction = 1.0;  // boundary: must take the synchronous path
  SolverFreeAdmm async(problem(), opt);
  const AdmmResult rs = sync.solve();
  const AdmmResult ra = async.solve();
  for (std::size_t i = 0; i < rs.x.size(); ++i) {
    ASSERT_EQ(rs.x[i], ra.x[i]);
  }
}

TEST(AdmmStatusTest, StatusNamesAreStable) {
  EXPECT_STREQ(to_string(AdmmStatus::kConverged), "converged");
  EXPECT_STREQ(to_string(AdmmStatus::kIterationLimit), "iteration-limit");
  EXPECT_STREQ(to_string(AdmmStatus::kTimeLimit), "time-limit");
  EXPECT_STREQ(to_string(AdmmStatus::kDiverged), "diverged");
  EXPECT_STREQ(to_string(AdmmStatus::kCancelled), "cancelled");
}

TEST(AdmmCancelTest, PreCancelledTokenStopsAtFirstCheck) {
  // An infeasible problem never converges, so the only way out is the
  // token; it is polled at the check cadence, so exactly check_every
  // iterations run.
  const auto p = tiny_problem(4.0);
  CancelToken cancel;
  cancel.request("test cancel");
  AdmmOptions opt;
  opt.max_iterations = 100000000;
  opt.check_every = 25;
  opt.cancel = &cancel;
  SolverFreeAdmm admm(p, opt);
  const AdmmResult res = admm.solve();
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kCancelled);
  EXPECT_EQ(res.iterations, 25);
  EXPECT_STREQ(cancel.reason(), "test cancel");
}

TEST(AdmmCancelTest, ExpiredDeadlineCancels) {
  const auto p = tiny_problem(4.0);
  CancelToken cancel;
  cancel.set_deadline_after(0.0);  // already expired
  AdmmOptions opt;
  opt.max_iterations = 100000000;
  opt.check_every = 10;
  opt.cancel = &cancel;
  SolverFreeAdmm admm(p, opt);
  const AdmmResult res = admm.solve();
  EXPECT_EQ(res.status, AdmmStatus::kCancelled);
  EXPECT_EQ(res.iterations, 10);
  EXPECT_STREQ(cancel.reason(), "deadline exceeded");
}

TEST(AdmmCancelTest, ConvergenceWinsOverPendingDeadline) {
  // A generous deadline must not perturb a run that converges first: the
  // result is bit-identical to the uncancellable solve.
  CancelToken cancel;
  cancel.set_deadline_after(3600.0);
  AdmmOptions opt;
  opt.cancel = &cancel;
  SolverFreeAdmm with_token(problem(), opt);
  const AdmmResult ra = with_token.solve();
  AdmmOptions bare;
  SolverFreeAdmm without(problem(), bare);
  const AdmmResult rb = without.solve();
  EXPECT_EQ(ra.status, AdmmStatus::kConverged);
  EXPECT_EQ(ra.iterations, rb.iterations);
  for (std::size_t i = 0; i < ra.x.size(); ++i) {
    ASSERT_EQ(ra.x[i], rb.x[i]);
  }
}

}  // namespace
}  // namespace dopf::core
