/// Concurrency contract of core::CancelToken, written to run under
/// ThreadSanitizer (tools/ci.sh sanitizer pass): many threads spamming
/// request() against many threads polling cancelled()/reason() must
/// produce exactly one observable false->true transition, and reason()
/// must always return one of the literals that was actually requested —
/// never null, garbage, or a torn pointer.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"

namespace dopf::core {
namespace {

TEST(CancelTokenTest, StartsClear) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.deadline_exceeded());
}

TEST(CancelTokenTest, RequestIsSticky) {
  CancelToken token;
  token.request("stop now");
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "stop now");
  // A second request may change the reason but never un-cancels.
  token.request("stop again");
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "stop again");
}

TEST(CancelTokenTest, PastDeadlineCancelsWithDeadlineReason) {
  CancelToken token;
  token.set_deadline_after(-1.0);
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.deadline_exceeded());
  EXPECT_STREQ(token.reason(), "deadline exceeded");
}

TEST(CancelTokenTest, OwnRequestReasonBeatsDeadline) {
  CancelToken token;
  token.set_deadline_after(-1.0);
  token.request("interrupted by signal");
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "interrupted by signal");
}

TEST(CancelTokenTest, ParentCancellationPropagates) {
  CancelToken drain;
  CancelToken request;
  request.link_parent(&drain);
  EXPECT_FALSE(request.cancelled());

  drain.request("drain requested");
  EXPECT_TRUE(request.cancelled());
  // The child's own deadline did not fire — the server uses exactly this
  // distinction to emit kDrained instead of kDeadline.
  EXPECT_FALSE(request.deadline_exceeded());
  EXPECT_STREQ(request.reason(), "drain requested");
}

TEST(CancelTokenTest, ChildDeadlineDoesNotCancelParent) {
  CancelToken drain;
  CancelToken request;
  request.link_parent(&drain);
  request.set_deadline_after(-1.0);
  EXPECT_TRUE(request.cancelled());
  EXPECT_TRUE(request.deadline_exceeded());
  EXPECT_FALSE(drain.cancelled());
}

/// The TSan-facing test: requester threads spam request() with distinct
/// static literals while poller threads spin on cancelled() and read
/// reason(). Every poller must observe a monotone transition (once true,
/// never false again in its own polling sequence) and every reason() read
/// after cancellation must be one of the requested literals.
TEST(CancelTokenTest, ConcurrentRequestSpamVersusPollers) {
  static const char* const kReasons[] = {
      "requester 0", "requester 1", "requester 2", "requester 3"};
  constexpr int kRequesters = 4;
  constexpr int kPollers = 4;
  constexpr int kSpins = 2000;

  CancelToken token;
  std::atomic<bool> start{false};
  std::atomic<int> bad_reason{0};
  std::atomic<int> regressions{0};

  std::vector<std::thread> threads;
  threads.reserve(kRequesters + kPollers);
  for (int r = 0; r < kRequesters; ++r) {
    threads.emplace_back([&, r] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kSpins; ++i) token.request(kReasons[r]);
    });
  }
  for (int p = 0; p < kPollers; ++p) {
    threads.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {
      }
      bool seen_cancelled = false;
      for (int i = 0; i < kSpins; ++i) {
        const bool now = token.cancelled();
        if (seen_cancelled && !now) ++regressions;
        if (now) {
          seen_cancelled = true;
          const char* reason = token.reason();
          bool known = false;
          for (const char* candidate : kReasons) {
            if (reason == candidate) known = true;
          }
          if (!known) ++bad_reason;
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(regressions.load(), 0) << "cancelled() went true -> false";
  EXPECT_EQ(bad_reason.load(), 0) << "reason() returned a non-requested string";

  // After the dust settles the reason is stable: repeated reads return the
  // same pointer, and it is one of the literals that was requested.
  const char* final_reason = token.reason();
  std::set<const char*> requested(std::begin(kReasons), std::end(kReasons));
  EXPECT_TRUE(requested.count(final_reason) == 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(token.reason(), final_reason);
}

/// Pollers linked through a parent observe the parent's request exactly as
/// their own: the server's per-request tokens poll (own flag | parent |
/// deadline) on every termination check.
TEST(CancelTokenTest, ConcurrentParentRequestObservedByLinkedChildren) {
  CancelToken drain;
  constexpr int kChildren = 8;
  std::vector<std::unique_ptr<CancelToken>> children;
  for (int i = 0; i < kChildren; ++i) {
    children.push_back(std::make_unique<CancelToken>());
    children.back()->link_parent(&drain);
  }

  std::atomic<bool> start{false};
  std::atomic<int> observed{0};
  std::vector<std::thread> threads;
  threads.reserve(kChildren + 1);
  for (int i = 0; i < kChildren; ++i) {
    threads.emplace_back([&, i] {
      while (!start.load(std::memory_order_acquire)) {
      }
      while (!children[i]->cancelled()) {
      }
      ++observed;
    });
  }
  threads.emplace_back([&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    drain.request("drain requested");
  });
  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_EQ(observed.load(), kChildren);
  for (const auto& child : children) {
    EXPECT_TRUE(child->cancelled());
    EXPECT_STREQ(child->reason(), "drain requested");
  }
}

}  // namespace
}  // namespace dopf::core
