#include "core/solve_session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/admm.hpp"
#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "runtime/instances.hpp"
#include "runtime/scenario.hpp"

namespace dopf::core {
namespace {

using dopf::opf::DistributedProblem;

struct Fixture {
  dopf::network::Network net = dopf::feeders::ieee13();
  dopf::opf::OpfModel model = dopf::opf::build_model(net);
  DistributedProblem problem = dopf::opf::decompose(net, model);
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

/// A load-only variant of the fixture: every constant-power load scaled by
/// `factor`, re-decomposed. Against the base model this must diff as
/// rhs/c/bounds-only — zero refactorizations.
DistributedProblem constant_load_scenario(double factor) {
  const dopf::runtime::Scenario sc{
      "scale",
      {{dopf::runtime::ScenarioOverride::Kind::kLoadScale, "constant",
        factor}}};
  const auto net_s = dopf::runtime::apply_scenario(fixture().net, sc);
  return dopf::opf::decompose(net_s);
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// --- Layer 1+2: the model/binding pack must be bit-identical to the
// single-shot wrapper's, or backends would diverge from golden traces.

TEST(SolveModelTest, PackBitwiseEquivalentToLegacyPath) {
  AdmmOptions opt;
  SolverFreeAdmm legacy(fixture().problem, opt);

  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);
  const PackedLocalSolvers& pack = binding.pack();

  const PackedLocalSolvers& ref = legacy.packed();
  EXPECT_EQ(ref.comp_offset, pack.comp_offset);
  EXPECT_EQ(ref.abar_offset, pack.abar_offset);
  EXPECT_EQ(ref.comp_nvars, pack.comp_nvars);
  EXPECT_EQ(ref.global_idx, pack.global_idx);
  EXPECT_EQ(ref.gather_ptr, pack.gather_ptr);
  EXPECT_EQ(ref.gather_pos, pack.gather_pos);
  EXPECT_TRUE(bitwise_equal(ref.abar, pack.abar));
  EXPECT_TRUE(bitwise_equal(ref.bbar, pack.bbar));
  EXPECT_TRUE(bitwise_equal(ref.c, pack.c));
  EXPECT_TRUE(bitwise_equal(ref.lb, pack.lb));
  EXPECT_TRUE(bitwise_equal(ref.ub, pack.ub));
  EXPECT_TRUE(bitwise_equal(ref.x0, pack.x0));
  EXPECT_EQ(topology_fingerprint(ref), topology_fingerprint(pack));
  EXPECT_EQ(scenario_fingerprint(ref), scenario_fingerprint(pack));
}

// --- Load-only rebind: zero refactorizations, and the rhs re-derivation
// through the retained factor is bit-identical to a cold build.

TEST(ScenarioBindingTest, LoadOnlyRebindNeedsZeroRefactorizations) {
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);

  const auto scenario = constant_load_scenario(1.1);
  const RebindStats st = binding.rebind(scenario);

  EXPECT_EQ(st.refactorizations, 0);
  EXPECT_GT(st.rhs_rebinds, 0);
  EXPECT_EQ(model.refactorizations(), 0);
  EXPECT_EQ(st.unchanged + st.rhs_rebinds,
            static_cast<int>(fixture().problem.num_components()));

  // The rebound pack must match a cold build of the scenario problem bit
  // for bit: rebind_rhs replays exactly the assemble-time bbar arithmetic.
  SolveModel cold_model(scenario, opt.projector);
  ScenarioBinding cold(cold_model);
  EXPECT_TRUE(bitwise_equal(cold.pack().bbar, binding.pack().bbar));
  EXPECT_TRUE(bitwise_equal(cold.pack().c, binding.pack().c));
  EXPECT_TRUE(bitwise_equal(cold.pack().lb, binding.pack().lb));
  EXPECT_TRUE(bitwise_equal(cold.pack().ub, binding.pack().ub));
  EXPECT_TRUE(bitwise_equal(cold.pack().x0, binding.pack().x0));
  EXPECT_EQ(cold.scenario_fingerprint(), binding.scenario_fingerprint());
  // Topology untouched.
  EXPECT_EQ(cold.model_fingerprint(), binding.model_fingerprint());
}

TEST(ScenarioBindingTest, RebindBackToBaseRestoresScenarioFingerprint) {
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);
  const std::uint64_t base_fp = binding.scenario_fingerprint();

  binding.rebind(constant_load_scenario(0.9));
  EXPECT_NE(binding.scenario_fingerprint(), base_fp);
  binding.rebind(fixture().problem);
  EXPECT_EQ(binding.scenario_fingerprint(), base_fp);
  EXPECT_EQ(model.refactorizations(), 0);
}

// --- Topology edit: exactly the touched component is refactorized.

TEST(ScenarioBindingTest, TopologyEditRefactorizesExactlyThatComponent) {
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);

  // Scale one component's equality block (rows of A_s and b_s together):
  // same solution set, different bytes — a genuine A_s change.
  DistributedProblem edited = fixture().problem;
  const std::size_t target = edited.components.size() / 2;
  auto& comp = edited.components[target];
  dopf::linalg::Matrix a2 = comp.a;
  for (std::size_t r = 0; r < a2.rows(); ++r) {
    for (std::size_t cidx = 0; cidx < a2.cols(); ++cidx) {
      a2(r, cidx) *= 2.0;
    }
  }
  comp.a = a2;
  for (double& v : comp.b) v *= 2.0;

  const RebindStats st = binding.rebind(edited);
  EXPECT_EQ(st.refactorizations, 1);
  EXPECT_EQ(model.refactorizations(), 1);
  EXPECT_EQ(st.unchanged,
            static_cast<int>(edited.components.size()) - 1);
  EXPECT_EQ(st.rhs_rebinds, 0);

  // The refreshed component must equal a cold build of the edited problem.
  SolveModel cold_model(edited, opt.projector);
  ScenarioBinding cold(cold_model);
  EXPECT_TRUE(bitwise_equal(cold.pack().abar, binding.pack().abar));
  EXPECT_TRUE(bitwise_equal(cold.pack().bbar, binding.pack().bbar));
  EXPECT_EQ(cold.model_fingerprint(), binding.model_fingerprint());
}

/// Helper for the topology-edit tests: scale one component's equality
/// block (rows of A_s and b_s together) by `factor` — same solution set,
/// different bytes, a genuine A_s change.
DistributedProblem scale_component_block(DistributedProblem problem,
                                         std::size_t target, double factor) {
  auto& comp = problem.components[target];
  dopf::linalg::Matrix a2 = comp.a;
  for (std::size_t r = 0; r < a2.rows(); ++r) {
    for (std::size_t cidx = 0; cidx < a2.cols(); ++cidx) {
      a2(r, cidx) *= factor;
    }
  }
  comp.a = a2;
  for (double& v : comp.b) v *= factor;
  return problem;
}

// --- Streaming edge cases: revert-to-base, repeated edits, layout drift.

TEST(SolveSessionTest, RevertToBaseStepNeedsZeroRefactorizations) {
  // A stream step that returns to the base scenario (load-only excursion
  // and back) must flow entirely through cached factorizations.
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);
  SolveSession session(binding, opt);
  const std::uint64_t base_fp = binding.scenario_fingerprint();

  ASSERT_TRUE(session.solve().converged);
  session.rebind(constant_load_scenario(1.08));
  ASSERT_TRUE(session.solve().converged);
  const RebindStats revert = session.rebind(fixture().problem);
  EXPECT_EQ(revert.refactorizations, 0);
  EXPECT_GT(revert.rhs_rebinds, 0);  // the loads move back
  EXPECT_EQ(binding.scenario_fingerprint(), base_fp);

  const AdmmResult back = session.solve();
  EXPECT_TRUE(back.converged);
  EXPECT_TRUE(back.warm_started);
  EXPECT_EQ(session.stats().refactorizations, 0);
  EXPECT_EQ(model.refactorizations(), 0);
}

TEST(ScenarioBindingTest, ConsecutiveEditsToSameComponentRefactorizeTwice) {
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);
  const std::size_t target = fixture().problem.components.size() / 2;

  const auto once = scale_component_block(fixture().problem, target, 2.0);
  EXPECT_EQ(binding.rebind(once).refactorizations, 1);
  EXPECT_EQ(model.refactorizations(), 1);

  // Rebinding the SAME edited problem is a no-op for that component...
  const RebindStats same = binding.rebind(once);
  EXPECT_EQ(same.refactorizations, 0);
  EXPECT_EQ(same.rhs_rebinds, 0);
  EXPECT_EQ(model.refactorizations(), 1);

  // ...and a second, different edit to the same component pays exactly one
  // more refactorization: two edits, two refactorizations, never amortized
  // away and never double-counted.
  const auto twice = scale_component_block(fixture().problem, target, 3.0);
  EXPECT_EQ(binding.rebind(twice).refactorizations, 1);
  EXPECT_EQ(model.refactorizations(), 2);

  // The end state equals a cold build of the final problem.
  SolveModel cold_model(twice, opt.projector);
  ScenarioBinding cold(cold_model);
  EXPECT_TRUE(bitwise_equal(cold.pack().abar, binding.pack().abar));
  EXPECT_TRUE(bitwise_equal(cold.pack().bbar, binding.pack().bbar));
  EXPECT_EQ(cold.model_fingerprint(), binding.model_fingerprint());
}

TEST(ScenarioBindingTest, ChangedComponentDimensionsAreRejected) {
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);

  // Dropping a component is a layout change, not a scenario.
  DistributedProblem fewer = fixture().problem;
  fewer.components.pop_back();
  EXPECT_THROW(binding.rebind(fewer), std::invalid_argument);

  // So is a component that covers a different global variable set.
  DistributedProblem moved = fixture().problem;
  ASSERT_GE(moved.components.front().global.size(), 2u);
  std::swap(moved.components.front().global[0],
            moved.components.front().global[1]);
  EXPECT_THROW(binding.rebind(moved), std::invalid_argument);

  // The rejected rebinds must not have corrupted the binding: the base
  // problem still rebinds as a no-op and solves.
  const RebindStats st = binding.rebind(fixture().problem);
  EXPECT_EQ(st.refactorizations, 0);
  EXPECT_EQ(st.rhs_rebinds, 0);
  SolveSession session(binding, opt);
  EXPECT_TRUE(session.solve().converged);
}

TEST(ScenarioBindingTest, DifferentLayoutIsRejected) {
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);

  // Decomposing without leaf merging yields a different component layout —
  // that is a new model, not a scenario.
  dopf::opf::DecomposeOptions dec;
  dec.merge_leaves = false;
  const auto other = dopf::opf::decompose(fixture().net, fixture().model, dec);
  EXPECT_THROW(binding.rebind(other), std::invalid_argument);
}

// --- Layer 3: warm starts converge to the same answer in fewer
// iterations, and the precompute is reused (counter-asserted).

TEST(SolveSessionTest, WarmSolveMatchesColdSolutionOnIeee13) {
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);
  SolveSession session(binding, opt);

  const AdmmResult base = session.solve();
  ASSERT_TRUE(base.converged);
  EXPECT_FALSE(base.warm_started);

  const auto scenario = constant_load_scenario(1.05);
  const RebindStats st = session.rebind(scenario);
  EXPECT_EQ(st.refactorizations, 0);
  const AdmmResult warm = session.solve();
  ASSERT_TRUE(warm.converged);
  EXPECT_TRUE(warm.warm_started);

  // Cold reference for the same scenario through a fresh session.
  SolveModel cold_model(scenario, opt.projector);
  ScenarioBinding cold_binding(cold_model);
  SolveSession cold_session(cold_binding, opt);
  const AdmmResult cold = cold_session.solve();
  ASSERT_TRUE(cold.converged);
  EXPECT_FALSE(cold.warm_started);

  // Same solution within the dopf_verify --reference tolerance.
  const double tol = 5e-2;
  EXPECT_NEAR(warm.objective, cold.objective,
              tol * (1.0 + std::abs(cold.objective)));
  ASSERT_EQ(warm.x.size(), cold.x.size());
  for (std::size_t i = 0; i < warm.x.size(); ++i) {
    EXPECT_NEAR(warm.x[i], cold.x[i], tol) << "x[" << i << "]";
  }
  // Warm start helps on a 5% perturbation.
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(SolveSessionTest, CountersTrackReuseAcrossSweep) {
  AdmmOptions opt;
  SolveModel model(fixture().problem, opt.projector);
  ScenarioBinding binding(model);
  SolveSession session(binding, opt);

  ASSERT_TRUE(session.solve().converged);
  for (double f : {0.95, 1.0, 1.05}) {
    session.rebind(constant_load_scenario(f));
    const AdmmResult res = session.solve();
    ASSERT_TRUE(res.converged);
    EXPECT_TRUE(res.warm_started);
    // Scenario solves repay no precompute and report the reuse.
    EXPECT_EQ(res.timing.precompute, 0.0);
    EXPECT_EQ(res.timing.refactorizations, 0);
    EXPECT_GT(res.timing.precompute_reuse_count, 0);
  }
  const SessionStats& st = session.stats();
  EXPECT_EQ(st.solves, 4);
  EXPECT_EQ(st.cold_solves, 1);
  EXPECT_EQ(st.warm_solves, 3);
  EXPECT_EQ(st.precompute_reuses, 3);
  EXPECT_EQ(st.refactorizations, 0);
  EXPECT_GT(st.rhs_rebinds, 0);
}

// --- Satellite: the single-shot wrapper no longer double-counts the
// precompute when run twice.

TEST(SolverFreeAdmmTest, SecondRunDoesNotDoubleCountPrecompute) {
  AdmmOptions opt;
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult first = admm.solve();
  ASSERT_TRUE(first.converged);
  EXPECT_GE(first.timing.precompute, 0.0);
  EXPECT_EQ(first.timing.precompute_reuse_count, 0);

  admm.reset();
  const AdmmResult second = admm.solve();
  ASSERT_TRUE(second.converged);
  EXPECT_EQ(second.timing.precompute, 0.0);
  EXPECT_EQ(second.timing.precompute_reuse_count, 1);
}

}  // namespace
}  // namespace dopf::core
