#include "core/admm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "solver/reference.hpp"

namespace dopf::core {
namespace {

using dopf::opf::DistributedProblem;
using dopf::opf::OpfModel;

struct Fixture {
  dopf::network::Network net = dopf::feeders::ieee13();
  OpfModel model = dopf::opf::build_model(net);
  DistributedProblem problem = dopf::opf::decompose(net, model);
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(SolverFreeAdmmTest, ConvergesOnIeee13AtPaperTolerance) {
  AdmmOptions opt;  // rho = 100, eps_rel = 1e-3 (paper defaults)
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  ASSERT_TRUE(res.converged);
  // Paper Table V reports 944 iterations for IEEE13; same order expected.
  EXPECT_GT(res.iterations, 100);
  EXPECT_LT(res.iterations, 20000);
}

TEST(SolverFreeAdmmTest, ReachesReferenceOptimum) {
  AdmmOptions opt;
  opt.eps_rel = 1e-5;
  opt.max_iterations = 100000;
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  ASSERT_TRUE(res.converged);

  const auto ref = dopf::solver::reference_solve(fixture().model);
  ASSERT_EQ(ref.status, dopf::solver::LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, ref.objective,
              1e-3 * (1.0 + std::abs(ref.objective)));
  EXPECT_LT(fixture().model.equation_residual(res.x), 1e-3);
  EXPECT_EQ(fixture().model.bound_violation(res.x), 0.0);
}

TEST(SolverFreeAdmmTest, ResidualsDecreaseOverall) {
  AdmmOptions opt;
  opt.eps_rel = 1e-4;
  opt.max_iterations = 50000;
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  ASSERT_TRUE(res.converged);
  ASSERT_GT(res.history.size(), 10u);
  const auto& first = res.history.front();
  const auto& last = res.history.back();
  EXPECT_LT(last.primal_residual, first.primal_residual);
  EXPECT_LT(last.dual_residual, first.dual_residual * 10.0);
}

TEST(SolverFreeAdmmTest, TerminationCriterionExactlyEq16) {
  AdmmOptions opt;
  SolverFreeAdmm admm(fixture().problem, opt);
  admm.global_update();
  admm.local_update();
  admm.dual_update();
  const IterationRecord rec = admm.compute_residuals(1);
  EXPECT_EQ(admm.termination_satisfied(rec),
            rec.primal_residual <= rec.eps_primal &&
                rec.dual_residual <= rec.eps_dual);
  // One iteration from the paper's initial point cannot satisfy (16).
  EXPECT_FALSE(admm.termination_satisfied(rec));
}

TEST(SolverFreeAdmmTest, GlobalUpdateRespectsBounds) {
  AdmmOptions opt;
  SolverFreeAdmm admm(fixture().problem, opt);
  for (int t = 0; t < 5; ++t) {
    admm.global_update();
    const auto x = admm.x();
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_GE(x[i], fixture().problem.lb[i]);
      EXPECT_LE(x[i], fixture().problem.ub[i]);
    }
    admm.local_update();
    admm.dual_update();
  }
}

TEST(SolverFreeAdmmTest, LocalUpdateSatisfiesComponentConstraints) {
  AdmmOptions opt;
  SolverFreeAdmm admm(fixture().problem, opt);
  admm.global_update();
  admm.local_update();
  const auto z = admm.z();
  for (std::size_t s = 0; s < fixture().problem.num_components(); ++s) {
    const auto& comp = fixture().problem.components[s];
    const double* zs = z.data() + admm.offset(s);
    for (std::size_t r = 0; r < comp.num_rows(); ++r) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < comp.num_vars(); ++j) {
        lhs += comp.a(r, j) * zs[j];
      }
      EXPECT_NEAR(lhs, comp.b[r], 1e-8) << comp.name << " row " << r;
    }
  }
}

TEST(SolverFreeAdmmTest, ResetReproducesIdenticalRun) {
  AdmmOptions opt;
  opt.max_iterations = 50;
  opt.check_every = 10;
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult first = admm.solve();
  admm.reset();
  const AdmmResult second = admm.solve();
  ASSERT_EQ(first.x.size(), second.x.size());
  for (std::size_t i = 0; i < first.x.size(); ++i) {
    EXPECT_EQ(first.x[i], second.x[i]);
  }
}

TEST(SolverFreeAdmmTest, PrecomputedSolversCanBeShared) {
  LocalSolvers solvers = LocalSolvers::precompute(fixture().problem);
  AdmmOptions opt;
  opt.max_iterations = 20;
  SolverFreeAdmm a(fixture().problem, opt, std::move(solvers));
  const AdmmResult res = a.solve();
  EXPECT_EQ(res.iterations, 20);
}

TEST(SolverFreeAdmmTest, HistoryRespectsRecordEvery) {
  AdmmOptions opt;
  opt.max_iterations = 100;
  opt.check_every = 5;
  opt.record_every = 2;  // every second check
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  EXPECT_EQ(res.history.size(), 10u);
  EXPECT_EQ(res.history.front().iteration, 10);
}

TEST(SolverFreeAdmmTest, AdaptiveRhoStillConverges) {
  AdmmOptions opt;
  opt.eps_rel = 1e-4;
  opt.max_iterations = 100000;
  opt.adaptive_rho = true;
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  ASSERT_TRUE(res.converged);
  const auto ref = dopf::solver::reference_solve(fixture().model);
  EXPECT_NEAR(res.objective, ref.objective,
              1e-2 * (1.0 + std::abs(ref.objective)));
}

TEST(SolverFreeAdmmTest, TimingBreakdownIsPopulated) {
  AdmmOptions opt;
  opt.max_iterations = 50;
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  EXPECT_EQ(res.timing.iterations, 50);
  EXPECT_GT(res.timing.local_update, 0.0);
  EXPECT_GT(res.timing.global_update, 0.0);
  EXPECT_GT(res.timing.dual_update, 0.0);
  EXPECT_GT(res.timing.total(), 0.0);
}

TEST(SolverFreeAdmmTest, ComponentTimersOnlyWhenRequested) {
  AdmmOptions opt;
  opt.max_iterations = 10;
  SolverFreeAdmm plain(fixture().problem, opt);
  auto res = plain.solve();
  double sum = 0.0;
  for (double s : res.component_seconds) sum += s;
  EXPECT_EQ(sum, 0.0);

  opt.record_component_times = true;
  SolverFreeAdmm timed(fixture().problem, opt);
  res = timed.solve();
  sum = 0.0;
  for (double s : res.component_seconds) sum += s;
  EXPECT_GT(sum, 0.0);
  EXPECT_EQ(res.component_seconds.size(),
            fixture().problem.num_components());
}

TEST(SolverFreeAdmmTest, OverRelaxationAcceleratesConvergence) {
  AdmmOptions base;
  base.eps_rel = 1e-4;
  base.max_iterations = 100000;
  SolverFreeAdmm plain(fixture().problem, base);
  const AdmmResult r1 = plain.solve();

  AdmmOptions relaxed = base;
  relaxed.relaxation = 1.6;
  SolverFreeAdmm fast(fixture().problem, relaxed);
  const AdmmResult r2 = fast.solve();

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.iterations, r1.iterations);
  // And it must not change what is computed.
  const auto ref = dopf::solver::reference_solve(fixture().model);
  EXPECT_NEAR(r2.objective, ref.objective,
              5e-3 * (1.0 + std::abs(ref.objective)));
}

TEST(SolverFreeAdmmTest, QuantizedCommunicationStillConverges) {
  AdmmOptions opt;
  opt.eps_rel = 1e-3;
  opt.max_iterations = 200000;
  opt.quantize_bits = 24;
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  ASSERT_TRUE(res.converged);
  const auto ref = dopf::solver::reference_solve(fixture().model);
  // 24-bit messages (3 bytes/entry, a 62% traffic cut): near-exact.
  EXPECT_NEAR(res.objective, ref.objective,
              0.1 * (1.0 + std::abs(ref.objective)));
}

TEST(SolverFreeAdmmTest, CoarseQuantizationDegradesGracefully) {
  // Fewer bits must not crash; iterates stay bounded even at 6 bits.
  AdmmOptions opt;
  opt.max_iterations = 2000;
  opt.quantize_bits = 6;
  SolverFreeAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  for (double v : res.x) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(SolverFreeAdmmTest, ZeroQuantizationBitsIsExactPath) {
  AdmmOptions opt;
  opt.max_iterations = 100;
  opt.check_every = 1000;
  SolverFreeAdmm plain(fixture().problem, opt);
  AdmmOptions q = opt;
  q.quantize_bits = 0;
  SolverFreeAdmm same(fixture().problem, q);
  const AdmmResult a = plain.solve();
  const AdmmResult b = same.solve();
  for (std::size_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
}

TEST(SolverFreeAdmmTest, RhoSweepAllConverge) {
  for (double rho : {10.0, 100.0, 1000.0}) {
    AdmmOptions opt;
    opt.rho = rho;
    opt.max_iterations = 200000;
    SolverFreeAdmm admm(fixture().problem, opt);
    const AdmmResult res = admm.solve();
    EXPECT_TRUE(res.converged) << "rho = " << rho;
  }
}

}  // namespace
}  // namespace dopf::core
