/// Convergence watchdog: merit definition, stall escalation (nudge ->
/// restart-from-best -> stop), oscillation classification, and the solver
/// integration that turns persistent stalls into a clean kStalled status.

#include "core/watchdog.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "runtime/instances.hpp"

namespace dopf::core {
namespace {

IterationRecord rec(int iteration, double pres, double dres,
                    double eps_p = 1.0, double eps_d = 1.0) {
  IterationRecord r;
  r.iteration = iteration;
  r.primal_residual = pres;
  r.dual_residual = dres;
  r.eps_primal = eps_p;
  r.eps_dual = eps_d;
  r.rho = 1.0;
  return r;
}

const dopf::opf::DistributedProblem& problem() {
  static const auto net = dopf::feeders::ieee13();
  static const auto p = dopf::opf::decompose(net);
  return p;
}

dopf::opf::DistributedProblem infeasible_problem() {
  // x1 + x2 = 4 conflicts with the box [0,1]^2: ADMM's primal residual is
  // bounded away from zero forever, so every watchdog window stalls.
  dopf::opf::DistributedProblem p;
  p.num_vars = 2;
  p.c = {1.0, 1.0};
  p.lb = {0.0, 0.0};
  p.ub = {1.0, 1.0};
  p.x0 = {0.5, 0.5};
  dopf::opf::Component comp;
  comp.name = "eq";
  comp.a = dopf::linalg::Matrix{{1.0, 1.0}};
  comp.b = {4.0};
  comp.global = {0, 1};
  p.components.push_back(std::move(comp));
  p.copy_count = {1, 1};
  return p;
}

TEST(WatchdogTest, MeritIsWorstResidualRatio) {
  EXPECT_DOUBLE_EQ(ConvergenceWatchdog::merit(rec(0, 3.0, 1.0, 2.0, 4.0)),
                   1.5);
  EXPECT_DOUBLE_EQ(ConvergenceWatchdog::merit(rec(0, 0.1, 0.8, 1.0, 0.5)),
                   1.6);
  // Zero tolerance (lambda still zero makes eps_dual zero on the first
  // checks): merit is +inf, never "the best so far".
  EXPECT_TRUE(
      std::isinf(ConvergenceWatchdog::merit(rec(0, 1.0, 1.0, 1.0, 0.0))));
}

TEST(WatchdogTest, SteadyImprovementNeverStalls) {
  ConvergenceWatchdog dog(/*window=*/5, /*min_improvement=*/1e-3,
                          /*max_restarts=*/2);
  double merit = 100.0;
  for (int t = 0; t < 100; ++t) {
    merit *= 0.9;  // 10% per check, far above the 0.1% floor
    const auto d = dog.observe(rec(t, merit, merit / 2.0));
    EXPECT_EQ(d.action, ConvergenceWatchdog::Action::kNone) << t;
    EXPECT_TRUE(d.new_best) << t;
  }
  EXPECT_EQ(dog.summary().stalls, 0);
}

TEST(WatchdogTest, EscalationSequenceNudgeRestartsStop) {
  const int window = 4;
  const int max_restarts = 2;
  ConvergenceWatchdog dog(window, 1e-3, max_restarts);
  using Action = ConvergenceWatchdog::Action;

  std::vector<Action> actions;
  int t = 0;
  // Flat merit: every window of checks stalls. Feed until kStop.
  while (actions.empty() || actions.back() != Action::kStop) {
    ASSERT_LT(t, 100) << "watchdog never escalated to kStop";
    actions.push_back(dog.observe(rec(t, 5.0, 5.0)).action);
    ++t;
  }
  std::vector<Action> escalations;
  for (const Action a : actions) {
    if (a != Action::kNone) escalations.push_back(a);
  }
  ASSERT_EQ(escalations.size(), static_cast<std::size_t>(max_restarts + 2));
  EXPECT_EQ(escalations[0], Action::kNudgeRho);
  EXPECT_EQ(escalations[1], Action::kRestartFromBest);
  EXPECT_EQ(escalations[2], Action::kRestartFromBest);
  EXPECT_EQ(escalations[3], Action::kStop);

  EXPECT_EQ(dog.summary().stalls, max_restarts + 2);
  EXPECT_EQ(dog.summary().rho_nudges, 1);
  EXPECT_EQ(dog.summary().restarts, max_restarts);
}

TEST(WatchdogTest, ImprovementAfterNudgeResetsEscalationWindow) {
  ConvergenceWatchdog dog(/*window=*/3, 1e-3, /*max_restarts=*/2);
  using Action = ConvergenceWatchdog::Action;
  // Stall once -> nudge.
  int t = 0;
  Action got = Action::kNone;
  for (; got == Action::kNone && t < 10; ++t) {
    got = dog.observe(rec(t, 5.0, 5.0)).action;
  }
  ASSERT_EQ(got, Action::kNudgeRho);
  // Now improve substantially: the stall window restarts from scratch, so
  // the next 2 flat checks must NOT trigger the restart escalation.
  EXPECT_EQ(dog.observe(rec(t++, 1.0, 1.0)).action, Action::kNone);
  EXPECT_EQ(dog.observe(rec(t++, 1.0, 1.0)).action, Action::kNone);
  EXPECT_EQ(dog.observe(rec(t++, 1.0, 1.0)).action, Action::kNone);
}

TEST(WatchdogTest, OscillationFlaggedInSummary) {
  const int window = 6;
  ConvergenceWatchdog dog(window, 1e-3, /*max_restarts=*/1);
  // Merit bounces between 5 and 6: no net improvement, sign of the delta
  // flips on every check.
  int t = 0;
  while (dog.summary().stalls == 0 && t < 50) {
    dog.observe(rec(t, (t % 2 == 0) ? 5.0 : 6.0, 1.0));
    ++t;
  }
  ASSERT_GT(dog.summary().stalls, 0);
  EXPECT_TRUE(dog.summary().oscillation_detected);
}

TEST(WatchdogTest, MonotoneStallIsNotOscillation) {
  const int window = 6;
  ConvergenceWatchdog dog(window, 1e-3, /*max_restarts=*/1);
  int t = 0;
  while (dog.summary().stalls == 0 && t < 50) {
    dog.observe(rec(t, 5.0, 1.0));  // perfectly flat
    ++t;
  }
  ASSERT_GT(dog.summary().stalls, 0);
  EXPECT_FALSE(dog.summary().oscillation_detected);
}

TEST(WatchdogTest, NonFiniteMeritDoesNotCountTowardStall) {
  ConvergenceWatchdog dog(/*window=*/2, 1e-3, /*max_restarts=*/1);
  using Action = ConvergenceWatchdog::Action;
  for (int t = 0; t < 20; ++t) {
    // eps_dual == 0 -> merit +inf: ignored, never stalls.
    EXPECT_EQ(dog.observe(rec(t, 1.0, 1.0, 1.0, 0.0)).action, Action::kNone);
  }
  EXPECT_EQ(dog.summary().stalls, 0);
}

TEST(WatchdogTest, NewBestTracksMinimumMerit) {
  ConvergenceWatchdog dog(/*window=*/10, 1e-3, /*max_restarts=*/1);
  EXPECT_TRUE(dog.observe(rec(0, 8.0, 1.0)).new_best);
  EXPECT_TRUE(dog.observe(rec(1, 4.0, 1.0)).new_best);
  EXPECT_FALSE(dog.observe(rec(2, 6.0, 1.0)).new_best);  // worse than 4
  EXPECT_TRUE(dog.observe(rec(3, 3.0, 1.0)).new_best);
  EXPECT_DOUBLE_EQ(dog.best_merit(), 3.0);
}

// ---- solver integration -------------------------------------------------

TEST(WatchdogSolverTest, InfeasibleProblemReportsStalled) {
  const auto p = infeasible_problem();
  AdmmOptions opt;
  opt.max_iterations = 50000;
  opt.check_every = 10;
  opt.watchdog = true;
  opt.watchdog_window = 100;
  opt.watchdog_max_restarts = 2;
  SolverFreeAdmm admm(p, opt);
  const AdmmResult res = admm.solve();
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kStalled);
  // Gave up long before the iteration limit instead of burning it down.
  EXPECT_LT(res.iterations, opt.max_iterations);
  EXPECT_GE(res.watchdog.stalls, 2);
  EXPECT_EQ(res.watchdog.rho_nudges, 1);
  EXPECT_EQ(res.watchdog.restarts, opt.watchdog_max_restarts);
}

TEST(WatchdogSolverTest, RestartFromBestKeepsBestIterateQuality) {
  // Same infeasible problem, but compare against the plain run: the stalled
  // result must not be worse than where the solver's best check stood —
  // restart-from-best means the final iterate tracks the best merit seen.
  const auto p = infeasible_problem();
  AdmmOptions opt;
  opt.max_iterations = 50000;
  opt.check_every = 10;
  opt.watchdog = true;
  SolverFreeAdmm admm(p, opt);
  const AdmmResult res = admm.solve();
  ASSERT_EQ(res.status, AdmmStatus::kStalled);
  ASSERT_FALSE(res.history.empty());
  const double final_merit =
      ConvergenceWatchdog::merit(res.history.back());
  double best_seen = std::numeric_limits<double>::infinity();
  for (const auto& r : res.history) {
    const double m = ConvergenceWatchdog::merit(r);
    if (std::isfinite(m)) best_seen = std::min(best_seen, m);
  }
  // The last check happens right after a restart-from-best, so the final
  // merit must sit within a small factor of the best the run ever saw.
  EXPECT_LE(final_merit, best_seen * 2.0);
}

TEST(WatchdogSolverTest, ConvergingRunUnaffectedByWatchdog) {
  AdmmOptions base;
  SolverFreeAdmm plain(problem(), base);
  const AdmmResult ref = plain.solve();
  ASSERT_TRUE(ref.converged);

  AdmmOptions wd = base;
  wd.watchdog = true;
  SolverFreeAdmm guarded(problem(), wd);
  const AdmmResult res = guarded.solve();
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, ref.iterations);
  EXPECT_EQ(res.watchdog.stalls, 0);
  ASSERT_EQ(res.x.size(), ref.x.size());
  for (std::size_t i = 0; i < res.x.size(); ++i) {
    ASSERT_EQ(res.x[i], ref.x[i]) << "x[" << i << "]";
  }
}

TEST(WatchdogSolverTest, StalledStatusNameStable) {
  EXPECT_STREQ(to_string(AdmmStatus::kStalled), "stalled");
}

TEST(WatchdogSolverTest, OverloadInstanceIsDeterministicallyStalled) {
  // The builtin "ieee13_overload" instance exists exactly for this: a
  // realistic feeder pushed past feasibility. Two runs must agree bit for
  // bit (the watchdog is deterministic), and both must stall.
  static const auto inst = dopf::runtime::make_instance("ieee13_overload");
  AdmmOptions opt;
  opt.max_iterations = 20000;
  opt.check_every = 10;
  opt.watchdog = true;
  SolverFreeAdmm a(inst.problem, opt);
  SolverFreeAdmm b(inst.problem, opt);
  const AdmmResult ra = a.solve();
  const AdmmResult rb = b.solve();
  EXPECT_EQ(ra.status, AdmmStatus::kStalled);
  EXPECT_EQ(rb.status, AdmmStatus::kStalled);
  EXPECT_EQ(ra.iterations, rb.iterations);
  ASSERT_EQ(ra.x.size(), rb.x.size());
  for (std::size_t i = 0; i < ra.x.size(); ++i) {
    ASSERT_EQ(ra.x[i], rb.x[i]) << "x[" << i << "]";
  }
}

}  // namespace
}  // namespace dopf::core
