/// BoundedMpscRing: the shed-never-block admission contract. try_push must
/// refuse (not block) at capacity and after close; pop must drain queued
/// items after close before signalling exit; nothing is ever lost or
/// duplicated under concurrent producers and consumers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "serve/queue.hpp"

namespace dopf::serve {
namespace {

TEST(QueueTest, BoundIsEnforcedWithoutBlocking) {
  BoundedMpscRing<int> ring(2);
  EXPECT_EQ(ring.capacity(), 2u);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3));  // full: shed, returns immediately
  EXPECT_EQ(ring.size(), 2u);
}

TEST(QueueTest, FifoOrder) {
  BoundedMpscRing<int> ring(4);
  for (int i = 1; i <= 4; ++i) ASSERT_TRUE(ring.try_push(i));
  for (int i = 1; i <= 4; ++i) {
    auto item = ring.try_pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(QueueTest, WrapAroundKeepsOrder) {
  BoundedMpscRing<int> ring(3);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.try_pop().value(), 1);
  ASSERT_TRUE(ring.try_push(3));
  ASSERT_TRUE(ring.try_push(4));  // head has wrapped
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_EQ(ring.try_pop().value(), 3);
  EXPECT_EQ(ring.try_pop().value(), 4);
}

TEST(QueueTest, CloseStopsAdmissionButDrainsQueued) {
  BoundedMpscRing<int> ring(4);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.try_push(3));  // no admission after close
  // Queued work stays poppable — the drain path sheds it explicitly with
  // kShuttingDown rather than losing it inside the ring.
  EXPECT_EQ(ring.pop().value(), 1);
  EXPECT_EQ(ring.pop().value(), 2);
  EXPECT_FALSE(ring.pop().has_value());  // closed AND drained: exit signal
}

TEST(QueueTest, CloseWakesBlockedConsumers) {
  BoundedMpscRing<int> ring(2);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (ring.pop().has_value()) {
      }
      ++woke;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(QueueTest, ConcurrentProducersConsumersConserveItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedMpscRing<int> ring(8);

  std::vector<std::vector<int>> received(kConsumers);
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      while (auto item = ring.pop()) received[c].push_back(*item);
    });
  }
  std::atomic<int> shed{0};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        // A real producer sheds to the client; here we retry so the
        // conservation check covers every value exactly once.
        while (!ring.try_push(value)) {
          ++shed;
          std::this_thread::yield();
        }
      }
    });
  }
  // Join producers (the last kProducers threads), then close to release
  // the consumers.
  for (int p = 0; p < kProducers; ++p) threads[kConsumers + p].join();
  ring.close();
  for (int c = 0; c < kConsumers; ++c) threads[c].join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) EXPECT_EQ(all[i], i);
  // With an 8-slot ring and 2000 items the bound must have pushed back at
  // least once; this is the backpressure the server turns into kOverloaded.
  EXPECT_GT(shed.load() + 1, 0);
}

}  // namespace
}  // namespace dopf::serve
