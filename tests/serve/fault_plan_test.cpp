/// ServeFaultPlan grammar and injector determinism: the transport fault
/// plane mirrors FsFaultPlan — failpoints keyed by the 1-based ordinal of
/// matching SENT frames, duplicate entries rejected at parse time, and a
/// deterministic injector that fires the same failpoints for the same
/// frame schedule every run.

#include <gtest/gtest.h>

#include <string>

#include "serve/fault.hpp"
#include "serve/wire.hpp"

namespace dopf::serve {
namespace {

TEST(FaultPlanTest, ParsesEveryKindWithOptions) {
  const ServeFaultPlan plan = ServeFaultPlan::parse(
      "drop:op=1;corrupt:op=2,times=3,frame=response;"
      "truncate:op=4,bytes=7,frame=reject;delay:op=5,ms=80,frame=pong");
  ASSERT_EQ(plan.events.size(), 4u);

  EXPECT_EQ(plan.events[0].kind, ServeFailpoint::Kind::kDrop);
  EXPECT_EQ(plan.events[0].op, 1);
  EXPECT_EQ(plan.events[0].times, 1);
  EXPECT_EQ(plan.events[0].frame_op, 0);

  EXPECT_EQ(plan.events[1].kind, ServeFailpoint::Kind::kCorrupt);
  EXPECT_EQ(plan.events[1].times, 3);
  EXPECT_EQ(plan.events[1].frame_op,
            static_cast<std::uint8_t>(Op::kSolveResponse));

  EXPECT_EQ(plan.events[2].kind, ServeFailpoint::Kind::kTruncate);
  EXPECT_EQ(plan.events[2].bytes, 7u);
  EXPECT_EQ(plan.events[2].frame_op, static_cast<std::uint8_t>(Op::kReject));

  EXPECT_EQ(plan.events[3].kind, ServeFailpoint::Kind::kDelay);
  EXPECT_EQ(plan.events[3].delay_ms, 80);
  EXPECT_EQ(plan.events[3].frame_op, static_cast<std::uint8_t>(Op::kPong));
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  const std::string spec =
      "drop:op=1;corrupt:op=2,times=3,frame=response;"
      "truncate:op=4,bytes=7,frame=reject;delay:op=5,ms=80,frame=pong";
  const ServeFaultPlan plan = ServeFaultPlan::parse(spec);
  const ServeFaultPlan again = ServeFaultPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());
  EXPECT_EQ(again.events.size(), plan.events.size());
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(ServeFaultPlan::parse("").empty());
  EXPECT_TRUE(ServeFaultPlan::parse(";;").empty());
}

TEST(FaultPlanTest, MalformedSpecsRaiseTypedErrors) {
  EXPECT_THROW(ServeFaultPlan::parse("explode:op=1"), WireError);
  EXPECT_THROW(ServeFaultPlan::parse("drop"), WireError);          // no ':'
  EXPECT_THROW(ServeFaultPlan::parse("drop:times=2"), WireError);  // no op
  EXPECT_THROW(ServeFaultPlan::parse("drop:op=0"), WireError);
  EXPECT_THROW(ServeFaultPlan::parse("drop:op=x"), WireError);
  EXPECT_THROW(ServeFaultPlan::parse("drop:op=1,times=0"), WireError);
  EXPECT_THROW(ServeFaultPlan::parse("drop:op=1,bogus=2"), WireError);
  EXPECT_THROW(ServeFaultPlan::parse("drop:op=1,frame=request"), WireError);
  EXPECT_THROW(ServeFaultPlan::parse("truncate:op=1,bytes=-1"), WireError);
  EXPECT_THROW(ServeFaultPlan::parse("delay:op=1,ms=99999"), WireError);
}

TEST(FaultPlanTest, DuplicateKindOpFrameIsRejected) {
  EXPECT_THROW(ServeFaultPlan::parse("drop:op=2;drop:op=2"), WireError);
  EXPECT_THROW(
      ServeFaultPlan::parse("drop:op=2,frame=response;drop:op=2,frame=response"),
      WireError);
  // Different frame filter or different kind at the same ordinal is fine.
  EXPECT_EQ(
      ServeFaultPlan::parse("drop:op=2;drop:op=2,frame=response").events.size(),
      2u);
  EXPECT_EQ(ServeFaultPlan::parse("drop:op=2;corrupt:op=2").events.size(), 2u);
}

TEST(FaultPlanTest, InjectorFiresOnMatchingOrdinalsOnly) {
  ServeFaultInjector inj(ServeFaultPlan::parse("drop:op=2,frame=response"));
  // Pongs do not advance the response counter.
  EXPECT_EQ(inj.on_send(Op::kPong), nullptr);
  EXPECT_EQ(inj.on_send(Op::kSolveResponse), nullptr);  // response #1
  const ServeFailpoint* hit = inj.on_send(Op::kSolveResponse);  // response #2
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->kind, ServeFailpoint::Kind::kDrop);
  EXPECT_EQ(inj.on_send(Op::kSolveResponse), nullptr);  // armed window passed
  EXPECT_EQ(inj.counts().dropped, 1);
}

TEST(FaultPlanTest, TimesWidensTheArmedWindow) {
  ServeFaultInjector inj(ServeFaultPlan::parse("corrupt:op=2,times=2"));
  EXPECT_EQ(inj.on_send(Op::kSolveResponse), nullptr);  // frame 1
  EXPECT_NE(inj.on_send(Op::kReject), nullptr);         // frame 2 (any kind)
  EXPECT_NE(inj.on_send(Op::kPong), nullptr);           // frame 3
  EXPECT_EQ(inj.on_send(Op::kSolveResponse), nullptr);  // frame 4
  EXPECT_EQ(inj.counts().corrupted, 2);
}

TEST(FaultPlanTest, InjectorIsDeterministicAcrossRuns) {
  const std::string spec = "drop:op=1,frame=response;delay:op=3";
  std::string first, second;
  for (std::string* trace : {&first, &second}) {
    ServeFaultInjector inj(ServeFaultPlan::parse(spec));
    for (const Op op : {Op::kPong, Op::kSolveResponse, Op::kSolveResponse,
                        Op::kReject, Op::kSolveResponse}) {
      const ServeFailpoint* hit = inj.on_send(op);
      *trace += hit == nullptr ? '.' : 'X';
    }
  }
  EXPECT_EQ(first, second);
  // Response #1 (the 2nd frame sent) is dropped; the unfiltered delay
  // counter counts every frame, so frame #3 overall is delayed.
  EXPECT_EQ(first, ".XX..");
}

TEST(FaultPlanTest, ApplyFailpointShapes) {
  const std::string frame = encode_frame(Op::kSolveResponse, "payload-bytes");

  ServeFailpoint drop;
  drop.kind = ServeFailpoint::Kind::kDrop;
  std::string copy = frame;
  bool close_after = false;
  EXPECT_FALSE(apply_failpoint(drop, &copy, &close_after));
  EXPECT_EQ(copy, frame);  // drop leaves the frame alone; it is just not sent

  ServeFailpoint corrupt;
  corrupt.kind = ServeFailpoint::Kind::kCorrupt;
  copy = frame;
  EXPECT_TRUE(apply_failpoint(corrupt, &copy, &close_after));
  EXPECT_EQ(copy.size(), frame.size());
  EXPECT_NE(copy, frame);
  EXPECT_FALSE(close_after);

  ServeFailpoint truncate;
  truncate.kind = ServeFailpoint::Kind::kTruncate;
  truncate.bytes = 6;
  copy = frame;
  EXPECT_TRUE(apply_failpoint(truncate, &copy, &close_after));
  EXPECT_EQ(copy.size(), 6u);
  EXPECT_TRUE(close_after);

  // bytes >= frame size still truncates by at least one byte — a
  // "truncation" that sends the whole frame would be a silent no-op.
  ServeFailpoint truncate_all;
  truncate_all.kind = ServeFailpoint::Kind::kTruncate;
  truncate_all.bytes = frame.size() + 100;
  copy = frame;
  EXPECT_TRUE(apply_failpoint(truncate_all, &copy, &close_after));
  EXPECT_EQ(copy.size(), frame.size() - 1);
}

}  // namespace
}  // namespace dopf::serve
