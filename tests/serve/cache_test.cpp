/// ModelCache policy: LRU eviction under a byte budget (always retaining
/// at least one entry), build-once coordination so concurrent misses on
/// the same key pay one build, and shared_ptr handout so eviction never
/// dangles an in-flight solve. Entries here are synthetic (no real
/// factorizations) — the policy is what's under test.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/cache.hpp"

namespace dopf::serve {
namespace {

std::shared_ptr<CachedModel> make_entry(const std::string& key,
                                        std::size_t bytes) {
  auto entry = std::make_shared<CachedModel>();
  entry->key = key;
  entry->bytes = bytes;
  entry->model_fp = std::hash<std::string>{}(key);
  return entry;
}

TEST(ModelCacheTest, MissBuildsThenHits) {
  ModelCache cache(1 << 20);
  int builds = 0;
  auto builder = [&] {
    ++builds;
    return make_entry("a", 100);
  };
  const auto first = cache.acquire("a", builder);
  const auto second = cache.acquire("a", builder);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.resident_bytes, 100u);
}

TEST(ModelCacheTest, LruEvictionUnderBudget) {
  ModelCache cache(250);
  cache.acquire("a", [] { return make_entry("a", 100); });
  cache.acquire("b", [] { return make_entry("b", 100); });
  // Touch "a" so "b" is the least recently used.
  cache.acquire("a", [] { return make_entry("a", 100); });
  cache.acquire("c", [] { return make_entry("c", 100); });  // 300 > 250

  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_LE(st.resident_bytes, 250u);

  // "b" was evicted; "a" and "c" still hit.
  int rebuilt = 0;
  cache.acquire("a", [&] { ++rebuilt; return make_entry("a", 100); });
  cache.acquire("c", [&] { ++rebuilt; return make_entry("c", 100); });
  EXPECT_EQ(rebuilt, 0);
  cache.acquire("b", [&] { ++rebuilt; return make_entry("b", 100); });
  EXPECT_EQ(rebuilt, 1);
}

TEST(ModelCacheTest, AtLeastOneEntrySurvivesATinyBudget) {
  ModelCache cache(10);  // smaller than any entry
  const auto a = cache.acquire("a", [] { return make_entry("a", 100); });
  EXPECT_EQ(cache.stats().entries, 1u);
  // A second key evicts the first but is itself retained: the cache
  // thrashes instead of failing.
  const auto b = cache.acquire("b", [] { return make_entry("b", 100); });
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.evictions, 1u);
  // The evicted entry is still alive through our shared_ptr.
  EXPECT_EQ(a->key, "a");
}

TEST(ModelCacheTest, BuilderFailureLeavesKeyAbsent) {
  ModelCache cache(1 << 20);
  EXPECT_THROW(
      cache.acquire("bad", []() -> std::shared_ptr<CachedModel> {
        throw std::runtime_error("build exploded");
      }),
      std::runtime_error);
  // The failed key is absent, not wedged: a later acquire rebuilds.
  int builds = 0;
  const auto entry = cache.acquire("bad", [&] {
    ++builds;
    return make_entry("bad", 10);
  });
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(entry->key, "bad");
}

TEST(ModelCacheTest, ConcurrentMissesBuildOnce) {
  ModelCache cache(1 << 20);
  std::atomic<int> builds{0};
  std::atomic<bool> start{false};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<CachedModel>> got(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      while (!start.load(std::memory_order_acquire)) {
      }
      got[i] = cache.acquire("shared", [&] {
        ++builds;
        // Widen the race window: later arrivals must wait, not rebuild.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return make_entry("shared", 64);
      });
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(got[i].get(), got[0].get());
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads - 1));
}

}  // namespace
}  // namespace dopf::serve
