/// Unit tests for the worker-supervision layer: crash fault plan parsing
/// and ordinal matching, waitpid exit classification (against real forked
/// children dying each documented way), the poison-request quarantine
/// lifecycle, the supervisor-link payload codecs, and the WorkerSupervisor
/// spawn / exchange / crash-classify / restart / budget-degrade loop driven
/// through the in-process worker_entry test seam (plain fork, no exec).

#include "serve/supervisor.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

namespace dopf::serve {
namespace {

// ---------------------------------------------------------------------------
// Crash fault plan

TEST(CrashFaultPlanTest, ParsesSingleAndComposedSpecs) {
  const CrashFaultPlan one = CrashFaultPlan::parse("signal:request=2");
  ASSERT_EQ(one.events.size(), 1u);
  EXPECT_EQ(one.events[0].kind, CrashFailpoint::Kind::kSignal);
  EXPECT_EQ(one.events[0].request, 2);
  EXPECT_EQ(one.events[0].times, 1);

  const CrashFaultPlan plan =
      CrashFaultPlan::parse("exit:request=5,times=3;hang:request=7");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, CrashFailpoint::Kind::kExit);
  EXPECT_EQ(plan.events[0].request, 5);
  EXPECT_EQ(plan.events[0].times, 3);
  EXPECT_EQ(plan.events[1].kind, CrashFailpoint::Kind::kHang);
  EXPECT_EQ(plan.events[1].request, 7);
  EXPECT_EQ(plan.events[1].times, 1);
}

TEST(CrashFaultPlanTest, ToStringRoundTrips) {
  const std::string spec = "signal:request=2;exit:request=5,times=3";
  const CrashFaultPlan plan = CrashFaultPlan::parse(spec);
  const CrashFaultPlan again = CrashFaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(again.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(again.events[i].request, plan.events[i].request);
    EXPECT_EQ(again.events[i].times, plan.events[i].times);
  }
}

TEST(CrashFaultPlanTest, RejectsMalformedSpecsTyped) {
  const char* bad[] = {
      "explode:request=1",           // unknown kind
      "signal",                      // no parameters
      "signal:request=0",            // ordinals are 1-based
      "signal:request=-3",           // negative ordinal
      "signal:request=1,times=0",    // zero repeat
      "signal:request=x",            // malformed integer
      "signal:bogus=1",              // unknown key
      "signal:request=1;signal:request=1",  // duplicate (kind, ordinal)
  };
  for (const char* spec : bad) {
    EXPECT_THROW(CrashFaultPlan::parse(spec), WireError) << spec;
  }
}

TEST(CrashFaultInjectorTest, MatchesDispatchOrdinalsAndCounts) {
  CrashFaultInjector inj(
      CrashFaultPlan::parse("signal:request=2,times=2;exit:request=5"));
  EXPECT_EQ(inj.on_dispatch(), nullptr);  // ordinal 1
  const CrashFailpoint* fp2 = inj.on_dispatch();
  ASSERT_NE(fp2, nullptr);  // ordinal 2
  EXPECT_EQ(fp2->kind, CrashFailpoint::Kind::kSignal);
  ASSERT_NE(inj.on_dispatch(), nullptr);  // ordinal 3 (times=2)
  EXPECT_EQ(inj.on_dispatch(), nullptr);  // ordinal 4
  const CrashFailpoint* fp5 = inj.on_dispatch();
  ASSERT_NE(fp5, nullptr);  // ordinal 5
  EXPECT_EQ(fp5->kind, CrashFailpoint::Kind::kExit);
  EXPECT_EQ(inj.on_dispatch(), nullptr);  // ordinal 6

  const CrashFaultInjector::Counts c = inj.counts();
  EXPECT_EQ(c.signaled, 2);
  EXPECT_EQ(c.exited, 1);
  EXPECT_EQ(c.hung, 0);
}

// ---------------------------------------------------------------------------
// Exit classification, against children that really die each way

WorkerExit exit_of_child(void (*die)()) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    die();
    ::_exit(0);
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return classify_worker_exit(status);
}

TEST(ClassifyWorkerExitTest, SignalDeathsClassifyWithTheSignalNumber) {
  struct Case {
    int sig;
    void (*die)();
  };
  const Case cases[] = {
      {SIGSEGV, +[] { std::signal(SIGSEGV, SIG_DFL); ::raise(SIGSEGV); }},
      {SIGABRT, +[] { std::signal(SIGABRT, SIG_DFL); std::abort(); }},
      {SIGFPE, +[] { std::signal(SIGFPE, SIG_DFL); ::raise(SIGFPE); }},
      {SIGKILL, +[] { ::raise(SIGKILL); }},
  };
  for (const Case& c : cases) {
    const WorkerExit e = exit_of_child(c.die);
    EXPECT_EQ(e.kind, WorkerExit::Kind::kSignal) << "signal " << c.sig;
    EXPECT_EQ(e.signal, c.sig);
    EXPECT_NE(e.to_string().find("killed by signal"), std::string::npos);
  }
}

TEST(ClassifyWorkerExitTest, ExitCodesClassifyCleanVersusNonZero) {
  const WorkerExit clean = exit_of_child(+[] { ::_exit(0); });
  EXPECT_EQ(clean.kind, WorkerExit::Kind::kClean);
  EXPECT_EQ(clean.to_string(), "clean exit");

  const WorkerExit three = exit_of_child(+[] { ::_exit(3); });
  EXPECT_EQ(three.kind, WorkerExit::Kind::kNonZero);
  EXPECT_EQ(three.code, 3);

  const WorkerExit exec_fail = exit_of_child(+[] { ::_exit(127); });
  EXPECT_EQ(exec_fail.kind, WorkerExit::Kind::kNonZero);
  EXPECT_EQ(exec_fail.code, 127);
}

// ---------------------------------------------------------------------------
// Quarantine

TEST(QuarantineTest, ArmsOnTheSecondCrashOnly) {
  Quarantine q(60000);
  EXPECT_EQ(q.record_crash(0xabc), 1);
  EXPECT_EQ(q.active_ms(0xabc), 0u);  // one crash: still admissible
  EXPECT_EQ(q.record_crash(0xabc), 2);
  EXPECT_GE(q.active_ms(0xabc), 1u);  // two crashes: quarantined
  EXPECT_EQ(q.total_quarantined(), 1u);
  // Unrelated content is unaffected.
  EXPECT_EQ(q.active_ms(0xdef), 0u);
}

TEST(QuarantineTest, TtlExpiryReadmitsWithACleanSlate) {
  Quarantine q(50);
  q.record_crash(7);
  q.record_crash(7);
  ASSERT_GE(q.active_ms(7), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // Expired: admissible again...
  EXPECT_EQ(q.active_ms(7), 0u);
  // ...and the slate is clean — it takes two FRESH crashes to re-arm.
  EXPECT_EQ(q.record_crash(7), 1);
  EXPECT_EQ(q.active_ms(7), 0u);
  // total_quarantined counts arming events, not live entries.
  EXPECT_EQ(q.total_quarantined(), 1u);
}

// ---------------------------------------------------------------------------
// Supervisor-link payload codecs

TEST(SupervisorWireTest, CrashArmRoundTripsAndRejectsGarbage) {
  for (const auto kind : {CrashFailpoint::Kind::kSignal,
                          CrashFailpoint::Kind::kExit,
                          CrashFailpoint::Kind::kHang}) {
    CrashArm arm;
    arm.kind = kind;
    const CrashArm back = CrashArm::decode(arm.encode());
    EXPECT_EQ(back.kind, kind);
  }
  EXPECT_THROW(CrashArm::decode(""), WireError);
  EXPECT_THROW(CrashArm::decode(std::string(1, '\x00')), WireError);
  EXPECT_THROW(CrashArm::decode(std::string(1, '\x09')), WireError);
}

TEST(SupervisorWireTest, WorkerStatsRoundTripsEveryField) {
  WorkerStatsMsg msg;
  msg.session.solves = 3;
  msg.session.cold_solves = 1;
  msg.session.warm_solves = 2;
  msg.session.precompute_reuses = 2;
  msg.session.refactorizations = 1;
  msg.session.rhs_rebinds = 3;
  msg.io.writes = 5;
  msg.io.reads = 2;
  msg.io.retries = 1;
  msg.io.retry_seconds = 3e-3;
  msg.cache_hits = 10;
  msg.cache_misses = 4;
  msg.cache_evictions = 1;
  msg.cache_resident_bytes = 123456;
  msg.cache_entries = 3;
  msg.solved = 9;
  msg.io_failure = true;

  const WorkerStatsMsg back = WorkerStatsMsg::decode(msg.encode());
  EXPECT_EQ(back.session.solves, 3);
  EXPECT_EQ(back.session.cold_solves, 1);
  EXPECT_EQ(back.session.warm_solves, 2);
  EXPECT_EQ(back.session.precompute_reuses, 2);
  EXPECT_EQ(back.session.refactorizations, 1);
  EXPECT_EQ(back.session.rhs_rebinds, 3);
  EXPECT_EQ(back.io.writes, 5);
  EXPECT_EQ(back.io.reads, 2);
  EXPECT_EQ(back.io.retries, 1);
  EXPECT_DOUBLE_EQ(back.io.retry_seconds, 3e-3);
  EXPECT_EQ(back.cache_hits, 10u);
  EXPECT_EQ(back.cache_misses, 4u);
  EXPECT_EQ(back.cache_evictions, 1u);
  EXPECT_EQ(back.cache_resident_bytes, 123456u);
  EXPECT_EQ(back.cache_entries, 3u);
  EXPECT_EQ(back.solved, 9u);
  EXPECT_TRUE(back.io_failure);

  // Truncated farewell frames must reject typed, like every other payload.
  const std::string bytes = msg.encode();
  EXPECT_THROW(WorkerStatsMsg::decode(bytes.substr(0, bytes.size() / 2)),
               WireError);
}

// ---------------------------------------------------------------------------
// WorkerSupervisor, driven through the worker_entry fork seam

/// Scripted in-process worker: replies to pings, echoes solve requests as
/// kBadRequest rejects, dies on demand (feeder "die!" exits 41, feeder
/// "segv" raises SIGSEGV, an armed crash directive exits 41 on the next
/// request), and sends the farewell stats frame on EOF like the real
/// worker_main.
int scripted_worker(int fd) {
  bool armed = false;
  std::uint64_t served = 0;
  for (;;) {
    ReadOutcome out;
    try {
      out = read_frame_fd(fd, /*idle_timeout_ms=*/50);
    } catch (const WireError&) {
      return 3;
    }
    if (out.status == ReadOutcome::kEof) break;
    if (out.status == ReadOutcome::kIdle) continue;
    if (out.frame.op == Op::kCrashArm) {
      armed = true;
      continue;
    }
    if (out.frame.op == Op::kPing) {
      if (!write_all_fd(fd, encode_frame(Op::kPong, out.frame.payload))) {
        return 4;
      }
      continue;
    }
    if (out.frame.op == Op::kSolveRequest) {
      const SolveRequest req = SolveRequest::decode(out.frame.payload);
      if (armed || req.feeder == "die!") ::_exit(41);
      if (req.feeder == "segv") {
        std::signal(SIGSEGV, SIG_DFL);
        ::raise(SIGSEGV);
      }
      Reject rej;
      rej.request_id = req.request_id;
      rej.code = RejectCode::kBadRequest;
      rej.message = "echo:" + req.feeder;
      if (!write_all_fd(fd, encode_frame(Op::kReject, rej.encode()))) {
        return 4;
      }
      ++served;
      continue;
    }
    return 5;  // unexpected op
  }
  WorkerStatsMsg stats;
  stats.solved = served;
  write_all_fd(fd, encode_frame(Op::kWorkerStats, stats.encode()));
  return 0;
}

SupervisorOptions scripted_options() {
  SupervisorOptions opts;
  opts.worker_entry = scripted_worker;
  opts.restart_budget = 4;
  opts.backoff_base_ms = 1;  // unit tests should not sleep for real
  opts.backoff_max_ms = 4;
  opts.grace_ms = 2000;
  return opts;
}

std::string request_frame(const std::string& feeder, std::uint64_t id = 1) {
  SolveRequest req;
  req.request_id = id;
  req.feeder = feeder;
  return encode_frame(Op::kSolveRequest, req.encode());
}

TEST(WorkerSupervisorTest, ExchangesFramesAndCollectsFarewellStats) {
  WorkerSupervisor sup(0, scripted_options(), nullptr);

  const auto ex1 = sup.exchange(request_frame("builtin:ieee13", 7), nullptr);
  ASSERT_EQ(ex1.kind, WorkerSupervisor::Exchange::Kind::kFrame);
  ASSERT_EQ(ex1.frame.op, Op::kReject);
  const Reject rej = Reject::decode(ex1.frame.payload);
  EXPECT_EQ(rej.request_id, 7u);
  EXPECT_EQ(rej.message, "echo:builtin:ieee13");

  const auto ex2 =
      sup.exchange(encode_frame(Op::kPing, Ping{99}.encode()), nullptr);
  ASSERT_EQ(ex2.kind, WorkerSupervisor::Exchange::Kind::kFrame);
  EXPECT_EQ(ex2.frame.op, Op::kPong);

  const auto report = sup.shutdown();
  ASSERT_TRUE(report.have_stats);
  EXPECT_EQ(report.stats.solved, 1u);  // one echo; the ping doesn't count
  EXPECT_EQ(report.exit.kind, WorkerExit::Kind::kClean);
  EXPECT_EQ(sup.restarts(), 0);
}

TEST(WorkerSupervisorTest, ClassifiesNonZeroExitAndRestarts) {
  WorkerSupervisor sup(0, scripted_options(), nullptr);

  const auto crash = sup.exchange(request_frame("die!"), nullptr);
  ASSERT_EQ(crash.kind, WorkerSupervisor::Exchange::Kind::kWorkerExit);
  EXPECT_EQ(crash.exit.kind, WorkerExit::Kind::kNonZero);
  EXPECT_EQ(crash.exit.code, 41);

  // The next exchange transparently respawns a fresh worker.
  const auto ok = sup.exchange(request_frame("builtin:ieee13"), nullptr);
  ASSERT_EQ(ok.kind, WorkerSupervisor::Exchange::Kind::kFrame);
  EXPECT_EQ(sup.restarts(), 1);
  EXPECT_FALSE(sup.degraded());
  sup.shutdown();
}

TEST(WorkerSupervisorTest, ClassifiesSignalDeath) {
  WorkerSupervisor sup(0, scripted_options(), nullptr);
  const auto crash = sup.exchange(request_frame("segv"), nullptr);
  ASSERT_EQ(crash.kind, WorkerSupervisor::Exchange::Kind::kWorkerExit);
  EXPECT_EQ(crash.exit.kind, WorkerExit::Kind::kSignal);
  EXPECT_EQ(crash.exit.signal, SIGSEGV);
  sup.shutdown();
}

TEST(WorkerSupervisorTest, CrashArmDirectiveReachesTheWorker) {
  WorkerSupervisor sup(0, scripted_options(), nullptr);
  CrashFailpoint fp;
  fp.kind = CrashFailpoint::Kind::kExit;
  const auto crash = sup.exchange(request_frame("builtin:ieee13"), &fp);
  ASSERT_EQ(crash.kind, WorkerSupervisor::Exchange::Kind::kWorkerExit);
  EXPECT_EQ(crash.exit.kind, WorkerExit::Kind::kNonZero);
  EXPECT_EQ(crash.exit.code, 41);
  sup.shutdown();
}

TEST(WorkerSupervisorTest, RestartBudgetExhaustionDegrades) {
  SupervisorOptions opts = scripted_options();
  opts.restart_budget = 0;
  WorkerSupervisor sup(0, opts, nullptr);

  const auto crash = sup.exchange(request_frame("die!"), nullptr);
  ASSERT_EQ(crash.kind, WorkerSupervisor::Exchange::Kind::kWorkerExit);

  // Budget 0: the slot may not respawn; it reports degraded forever after.
  const auto after = sup.exchange(request_frame("builtin:ieee13"), nullptr);
  EXPECT_EQ(after.kind, WorkerSupervisor::Exchange::Kind::kDegraded);
  EXPECT_TRUE(sup.degraded());
  EXPECT_EQ(sup.restarts(), 0);
  sup.shutdown();
}

TEST(WorkerSupervisorTest, DrainTokenSuppressesRespawn) {
  dopf::core::CancelToken drain;
  WorkerSupervisor sup(0, scripted_options(), &drain);
  const auto ok = sup.exchange(request_frame("builtin:ieee13"), nullptr);
  ASSERT_EQ(ok.kind, WorkerSupervisor::Exchange::Kind::kFrame);

  drain.request("drain");
  const auto crash = sup.exchange(request_frame("die!"), nullptr);
  ASSERT_EQ(crash.kind, WorkerSupervisor::Exchange::Kind::kWorkerExit);
  // While draining, a dead worker is not worth restarting.
  const auto after = sup.exchange(request_frame("builtin:ieee13"), nullptr);
  EXPECT_EQ(after.kind, WorkerSupervisor::Exchange::Kind::kDegraded);
  sup.shutdown();
}

}  // namespace
}  // namespace dopf::serve
