/// Frame-truncation and bit-flip fuzzing for the serve wire codec, in the
/// style of tests/runtime/truncation_fuzz_test.cpp: every byte-prefix of a
/// valid frame and every single-byte flip must surface as a typed
/// WireError — never a crash, a hang, or a silently partial decode. This
/// is the receive-side contract behind the transport fault plane: a torn
/// or corrupted frame is always distinguishable from a good one, so a
/// retried request can never apply half a response.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/fault.hpp"
#include "serve/supervisor.hpp"
#include "serve/wire.hpp"
#include "verify/codec.hpp"

namespace dopf::serve {
namespace {

std::vector<std::pair<std::string, std::string>> corpus() {
  SolveRequest req;
  req.request_id = 3;
  req.deadline_ms = 250;
  req.preflight = "warn";
  req.rho = 100.0;
  req.eps_rel = 1e-3;
  req.max_iterations = 200000;
  req.check_every = 10;
  req.feeder = "builtin:ieee13";
  req.scenario = "load * scale 1.05\n";

  SolveResponse resp;
  resp.request_id = 3;
  resp.status = 2;
  resp.converged = true;
  resp.iterations = 1140;
  resp.objective = 0.8169;
  resp.primal_residual = 2.5e-3;
  resp.dual_residual = 1.5e-1;
  resp.model_fp = 0x4fa556f60c2d954aull;
  resp.scenario_fp = 0xe7f6b5c9ef4cadaeull;

  Reject rej;
  rej.request_id = 3;
  rej.code = RejectCode::kOverloaded;
  rej.retry_after_ms = 50;
  rej.message = "queue full; retry after hint";

  return {
      {"request", encode_frame(Op::kSolveRequest, req.encode())},
      {"response", encode_frame(Op::kSolveResponse, resp.encode())},
      {"reject", encode_frame(Op::kReject, rej.encode())},
      {"ping", encode_frame(Op::kPing, Ping{77}.encode())},
  };
}

TEST(WireFuzzTest, FullFramesParse) {
  // The fuzz loops below prove nothing if the corpus itself is stale.
  for (const auto& [name, frame] : corpus()) {
    std::size_t consumed = 0;
    const Frame decoded = decode_frame(frame, &consumed);
    EXPECT_EQ(consumed, frame.size()) << name;
    EXPECT_FALSE(decoded.payload.empty() && name != "ping") << name;
  }
}

TEST(WireFuzzTest, EveryBytePrefixRaisesTypedWireError) {
  for (const auto& [name, frame] : corpus()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::string prefix = frame.substr(0, len);
      try {
        decode_frame(prefix);
        FAIL() << name << ": prefix of " << len << " bytes parsed as a frame";
      } catch (const WireError&) {
        // expected: typed rejection
      } catch (const std::exception& e) {
        FAIL() << name << ": prefix of " << len << " bytes raised untyped "
               << typeid(e).name() << ": " << e.what();
      }
    }
  }
}

/// Truncation is not the only torn shape — a flip anywhere in the frame
/// (magic, op, length, payload, or the CRC itself) must be detected. CRC-32
/// catches all single-bit errors; flipping a whole byte is 8 of them, and
/// magic/length damage is caught by the dedicated header checks first.
TEST(WireFuzzTest, EverySingleByteFlipRaisesTypedWireError) {
  for (const auto& [name, frame] : corpus()) {
    for (std::size_t pos = 0; pos < frame.size(); ++pos) {
      for (const unsigned char mask : {0x01, 0x80, 0xff}) {
        std::string mutated = frame;
        mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
        try {
          decode_frame(mutated);
          FAIL() << name << ": flip 0x" << std::hex << int(mask) << std::dec
                 << " at byte " << pos << " went undetected";
        } catch (const WireError&) {
          // expected
        } catch (const std::exception& e) {
          FAIL() << name << ": flip at byte " << pos << " raised untyped "
                 << typeid(e).name() << ": " << e.what();
        }
      }
    }
  }
}

/// A frame whose CRC validates but whose payload is the wrong shape for
/// its op (spliced streams, version skew) must fail in the payload
/// decoders — also typed, still no partial apply.
TEST(WireFuzzTest, CrossDecodingPayloadsRaisesTypedWireError) {
  const auto frames = corpus();
  for (const auto& [name, frame] : frames) {
    const Frame decoded = decode_frame(frame);
    const std::string& payload = decoded.payload;
    int accepted = 0;
    auto attempt = [&](auto decode_fn) {
      try {
        decode_fn(payload);
        ++accepted;
      } catch (const WireError&) {
      } catch (const std::exception& e) {
        FAIL() << name << ": untyped " << typeid(e).name() << ": " << e.what();
      }
    };
    attempt([](const std::string& p) { SolveRequest::decode(p); });
    attempt([](const std::string& p) { SolveResponse::decode(p); });
    attempt([](const std::string& p) { Reject::decode(p); });
    attempt([](const std::string& p) { Ping::decode(p); });
    // Its own decoder accepts it; a lookalike may coincidentally parse
    // (lengths can line up), but never with a crash or untyped error.
    EXPECT_GE(accepted, 1) << name;
  }
}

/// Hand-assemble a frame with an arbitrary op byte and a VALID CRC —
/// encode_frame() can't produce these, but a peer speaking a future
/// protocol version can.
std::string raw_frame(std::uint8_t op, std::string_view payload) {
  std::string out;
  auto put32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put32(kWireMagic);
  const std::size_t crc_begin = out.size();
  out.push_back(static_cast<char>(op));
  put32(static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put32(dopf::verify::crc32(
      std::string_view(out.data() + crc_begin, out.size() - crc_begin)));
  return out;
}

/// An unknown op with an intact CRC is a protocol-version mismatch, not
/// line noise — it must still surface as a typed WireError (after the CRC
/// check, so the message can say "mismatch" rather than "corrupt").
TEST(WireFuzzTest, CrcValidUnknownOpRaisesTypedWireError) {
  for (const std::uint8_t op : {0, 8, 99, 255}) {
    const std::string frame = raw_frame(op, "payload");
    try {
      decode_frame(frame);
      FAIL() << "op " << int(op) << " accepted";
    } catch (const WireError& e) {
      EXPECT_NE(std::string(e.what()).find("unknown frame op"),
                std::string::npos)
          << e.what();
    }
  }
}

/// A CRC-valid frame with a ZERO-LENGTH payload passes the frame layer
/// (the length field is honest), so every payload decoder must reject the
/// empty payload typed — no default-constructed request or farewell stats
/// leaking out of a frame that carried nothing.
TEST(WireFuzzTest, ZeroLengthPayloadRejectsTypedInEveryPayloadDecoder) {
  const std::pair<Op, void (*)(const std::string&)> cases[] = {
      {Op::kSolveRequest, [](const std::string& p) { SolveRequest::decode(p); }},
      {Op::kSolveResponse,
       [](const std::string& p) { SolveResponse::decode(p); }},
      {Op::kReject, [](const std::string& p) { Reject::decode(p); }},
      {Op::kPing, [](const std::string& p) { Ping::decode(p); }},
      {Op::kCrashArm, [](const std::string& p) { CrashArm::decode(p); }},
      {Op::kWorkerStats,
       [](const std::string& p) { WorkerStatsMsg::decode(p); }},
  };
  for (const auto& [op, decode] : cases) {
    const std::string frame = encode_frame(op, "");
    const Frame f = decode_frame(frame);  // frame layer accepts it
    EXPECT_EQ(f.op, op);
    EXPECT_TRUE(f.payload.empty());
    EXPECT_THROW(decode(f.payload), WireError) << to_string(op);
  }
}

/// apply_failpoint's corrupt/truncate mutations are exactly the shapes the
/// client must survive: feed its output straight into the decoder.
TEST(WireFuzzTest, InjectedFaultShapesAreDetected) {
  for (const auto& [name, frame] : corpus()) {
    ServeFailpoint corrupt;
    corrupt.kind = ServeFailpoint::Kind::kCorrupt;
    std::string corrupted = frame;
    bool close_after = false;
    ASSERT_TRUE(apply_failpoint(corrupt, &corrupted, &close_after));
    EXPECT_THROW(decode_frame(corrupted), WireError) << name;

    ServeFailpoint truncate;
    truncate.kind = ServeFailpoint::Kind::kTruncate;
    std::string truncated = frame;
    ASSERT_TRUE(apply_failpoint(truncate, &truncated, &close_after));
    EXPECT_TRUE(close_after);
    EXPECT_LT(truncated.size(), frame.size()) << name;
    EXPECT_THROW(decode_frame(truncated), WireError) << name;
  }
}

}  // namespace
}  // namespace dopf::serve
