/// Wire codec roundtrips: every message type must encode/decode to an
/// equal value, the frame layer must reject malformed input with typed
/// WireError, and content_hash must name the same drain checkpoint for a
/// resubmission (id/resume/deadline excluded) while distinguishing any
/// solve-defining change.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "serve/wire.hpp"

namespace dopf::serve {
namespace {

SolveRequest sample_request() {
  SolveRequest req;
  req.request_id = 42;
  req.deadline_ms = 1500;
  req.preflight = "strict";
  req.resume = true;
  req.rho = 250.0;
  req.eps_rel = 1e-5;
  req.max_iterations = 123456;
  req.check_every = 25;
  req.feeder = "builtin:ieee123";
  req.scenario = "load * scale 1.1\ngen * cost-scale 0.9\n";
  return req;
}

TEST(WireTest, SolveRequestRoundTrip) {
  const SolveRequest req = sample_request();
  const SolveRequest back = SolveRequest::decode(req.encode());
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.preflight, req.preflight);
  EXPECT_EQ(back.resume, req.resume);
  EXPECT_EQ(back.rho, req.rho);
  EXPECT_EQ(back.eps_rel, req.eps_rel);
  EXPECT_EQ(back.max_iterations, req.max_iterations);
  EXPECT_EQ(back.check_every, req.check_every);
  EXPECT_EQ(back.feeder, req.feeder);
  EXPECT_EQ(back.scenario, req.scenario);
}

TEST(WireTest, SolveResponseRoundTripPreservesExactBits) {
  SolveResponse resp;
  resp.request_id = 7;
  resp.status = 2;
  resp.converged = true;
  resp.iterations = 1140;
  resp.objective = 0x1.a240710565216p-1;
  resp.primal_residual = 0x1.481d0af918fc3p-9;
  resp.dual_residual = -0.0;
  resp.model_fp = 0x4fa556f60c2d954aull;
  resp.scenario_fp = 0xe7f6b5c9ef4cadaeull;
  const SolveResponse back = SolveResponse::decode(resp.encode());
  EXPECT_EQ(back.request_id, resp.request_id);
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.converged, resp.converged);
  EXPECT_EQ(back.iterations, resp.iterations);
  // Bit-exact doubles, including the negative-zero sign.
  EXPECT_EQ(back.objective, resp.objective);
  EXPECT_EQ(back.primal_residual, resp.primal_residual);
  EXPECT_TRUE(std::signbit(back.dual_residual));
  EXPECT_EQ(back.model_fp, resp.model_fp);
  EXPECT_EQ(back.scenario_fp, resp.scenario_fp);
  // Identical responses encode to identical bytes — the byte-compare
  // property the fault harness relies on.
  EXPECT_EQ(resp.encode(), resp.encode());
}

TEST(WireTest, RejectAndPingRoundTrip) {
  Reject rej;
  rej.request_id = 9;
  rej.code = RejectCode::kOverloaded;
  rej.retry_after_ms = 125;
  rej.message = "queue full";
  const Reject back = Reject::decode(rej.encode());
  EXPECT_EQ(back.request_id, rej.request_id);
  EXPECT_EQ(back.code, rej.code);
  EXPECT_EQ(back.retry_after_ms, rej.retry_after_ms);
  EXPECT_EQ(back.message, rej.message);

  Ping ping;
  ping.id = 0xdeadbeefull;
  EXPECT_EQ(Ping::decode(ping.encode()).id, ping.id);
}

TEST(WireTest, FrameRoundTripAndConsumed) {
  const std::string payload = sample_request().encode();
  const std::string frame = encode_frame(Op::kSolveRequest, payload);
  std::size_t consumed = 0;
  const Frame decoded = decode_frame(frame, &consumed);
  EXPECT_EQ(decoded.op, Op::kSolveRequest);
  EXPECT_EQ(decoded.payload, payload);
  EXPECT_EQ(consumed, frame.size());

  // Back-to-back frames in one buffer decode one at a time.
  const std::string two = frame + encode_frame(Op::kPing, Ping{1}.encode());
  const Frame first = decode_frame(two, &consumed);
  EXPECT_EQ(first.op, Op::kSolveRequest);
  const Frame second =
      decode_frame(std::string_view(two).substr(consumed), &consumed);
  EXPECT_EQ(second.op, Op::kPing);
}

TEST(WireTest, FrameRejectsBadMagicUnknownOpAndOversize) {
  const std::string frame = encode_frame(Op::kPing, Ping{1}.encode());
  std::string bad_magic = frame;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(decode_frame(bad_magic), WireError);

  // Unknown op: rebuild the frame by hand with op=99 and a valid CRC is
  // not possible through the public API, so flip the op byte — the CRC
  // check fires first, which is the stronger guarantee anyway.
  std::string bad_op = frame;
  bad_op[4] = 99;
  EXPECT_THROW(decode_frame(bad_op), WireError);

  // An oversize length field must be rejected before any allocation.
  std::string oversize = frame;
  oversize[5] = static_cast<char>(0xff);
  oversize[6] = static_cast<char>(0xff);
  oversize[7] = static_cast<char>(0xff);
  oversize[8] = static_cast<char>(0x7f);
  EXPECT_THROW(decode_frame(oversize), WireError);
}

TEST(WireTest, PayloadDecodersRejectTruncationAndTrailingGarbage) {
  const std::string payload = sample_request().encode();
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_THROW(SolveRequest::decode(payload.substr(0, len)), WireError)
        << "prefix of " << len << " bytes decoded";
  }
  EXPECT_THROW(SolveRequest::decode(payload + "x"), WireError);
  EXPECT_THROW(SolveResponse::decode(std::string()), WireError);
  EXPECT_THROW(Reject::decode(std::string("\x01")), WireError);
  EXPECT_THROW(Ping::decode(std::string("1234567")), WireError);
}

TEST(WireTest, ContentHashIgnoresIdentityFieldsOnly) {
  const SolveRequest base = sample_request();
  const std::uint64_t h = base.content_hash();

  // A resubmission of the same solve hashes identically, so it finds the
  // drain checkpoint the first attempt wrote.
  SolveRequest resubmit = base;
  resubmit.request_id = 999;
  resubmit.resume = true;
  resubmit.deadline_ms = 0;
  EXPECT_EQ(resubmit.content_hash(), h);

  // Every solve-defining field changes the hash.
  auto differs = [&](auto mutate) {
    SolveRequest m = base;
    mutate(m);
    return m.content_hash() != h;
  };
  EXPECT_TRUE(differs([](SolveRequest& m) { m.feeder = "builtin:ieee13"; }));
  EXPECT_TRUE(differs([](SolveRequest& m) { m.scenario += "load * scale 2\n"; }));
  EXPECT_TRUE(differs([](SolveRequest& m) { m.rho = 99.0; }));
  EXPECT_TRUE(differs([](SolveRequest& m) { m.eps_rel = 1e-4; }));
  EXPECT_TRUE(differs([](SolveRequest& m) { m.max_iterations = 7; }));
  EXPECT_TRUE(differs([](SolveRequest& m) { m.check_every = 1; }));
  EXPECT_TRUE(differs([](SolveRequest& m) { m.preflight = "warn"; }));
}

TEST(WireTest, RejectCodeNamesAreStable) {
  EXPECT_STREQ(to_string(RejectCode::kOverloaded), "overloaded");
  EXPECT_STREQ(to_string(RejectCode::kDeadline), "deadline");
  EXPECT_STREQ(to_string(RejectCode::kPreflight), "preflight");
  EXPECT_STREQ(to_string(RejectCode::kWire), "wire");
  EXPECT_STREQ(to_string(RejectCode::kShuttingDown), "shutting-down");
  EXPECT_STREQ(to_string(RejectCode::kBadRequest), "bad-request");
  EXPECT_STREQ(to_string(RejectCode::kDrained), "drained");
  EXPECT_STREQ(to_string(RejectCode::kInternal), "internal");
}

}  // namespace
}  // namespace dopf::serve
