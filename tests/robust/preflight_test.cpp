#include "robust/preflight.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "feeders/feeder_io.hpp"
#include "feeders/ieee13.hpp"
#include "opf/model.hpp"

namespace dopf::robust {
namespace {

using dopf::network::Network;
using dopf::network::Phase;

// Structurally valid and feasible, but line l1's impedance makes its two
// voltage-coupling rows nearly parallel (1 - |cos| ~ 1e-13): the raw Gram
// matrix is on the edge of losing positive definiteness even though RREF
// recovers a well-conditioned block. This is the strict/warn dividing line.
Network near_parallel_feeder() {
  std::stringstream in(
      "feeder v1\n"
      "bus src ab 1 1 1 1 1 1 0 0 0 0 0 0\n"
      "bus b1 ab 0.9 0.9 0.9 1.1 1.1 1.1 0 0 0 0 0 0\n"
      "bus b2 ab 0.9 0.9 0.9 1.1 1.1 1.1 0 0 0 0 0 0\n"
      "gen g1 src ab 0 0 0 inf inf inf -inf -inf -inf inf inf inf 1\n"
      "load d1 b2 ab wye 0 0 0 0 0 0 1e-8 1e-8 0 0 0 0\n"
      "line l1 src b1 ab 0 1 1 1 inf inf inf "
      "866025 0 0 0 866025 0 0 0 0 "
      "500000 1000000 0 -1000000 -500000 0 0 0 0 "
      "0 0 0 0 0 0 0 0 0 0 0 0\n"
      "line l2 b1 b2 ab 0 1 1 1 inf inf inf "
      "0.01 0 0 0 0.01 0 0 0 0 0.01 0 0 0 0.01 0 0 0 0 "
      "0 0 0 0 0 0 0 0 0 0 0 0\n");
  return dopf::feeders::read_feeder(in);
}

PreflightReport preflight(const Network& net, PreflightPolicy policy,
                          dopf::opf::DistributedProblem* problem = nullptr) {
  PreflightOptions options;
  options.policy = policy;
  return run_preflight(net, dopf::opf::build_model(net), problem, options);
}

TEST(PreflightTest, ParsePolicyRoundTrips) {
  EXPECT_EQ(parse_policy("warn"), PreflightPolicy::kWarn);
  EXPECT_EQ(parse_policy("auto"), PreflightPolicy::kRemediate);
  EXPECT_EQ(parse_policy("remediate"), PreflightPolicy::kRemediate);
  EXPECT_EQ(parse_policy("strict"), PreflightPolicy::kStrict);
  EXPECT_THROW(parse_policy("frobnicate"), std::invalid_argument);
  EXPECT_STREQ(to_string(PreflightPolicy::kStrict), "strict");
}

TEST(PreflightTest, AcceptsIeee13UnderEveryPolicy) {
  const Network net = dopf::feeders::ieee13();
  for (PreflightPolicy policy :
       {PreflightPolicy::kWarn, PreflightPolicy::kRemediate,
        PreflightPolicy::kStrict}) {
    const PreflightReport report = preflight(net, policy);
    EXPECT_TRUE(report.accepted) << to_string(policy) << ": "
                                 << report.rejection;
    EXPECT_EQ(report.num_errors(), 0u);
    EXPECT_FALSE(report.blocks.empty());
  }
}

TEST(PreflightTest, AcceptedProblemMatchesPlainDecompose) {
  // Under kWarn the decomposition preflight hands back must be identical to
  // a plain decompose() — this is what keeps golden traces byte-stable.
  const Network net = dopf::feeders::ieee13();
  dopf::opf::DistributedProblem via_preflight;
  const PreflightReport report =
      preflight(net, PreflightPolicy::kWarn, &via_preflight);
  ASSERT_TRUE(report.accepted);
  const auto plain = dopf::opf::decompose(net, dopf::opf::build_model(net));
  ASSERT_EQ(via_preflight.num_components(), plain.num_components());
  for (std::size_t s = 0; s < plain.num_components(); ++s) {
    EXPECT_EQ(via_preflight.components[s].name, plain.components[s].name);
    EXPECT_TRUE(
        via_preflight.components[s].a.approx_equal(plain.components[s].a, 0.0));
  }
}

TEST(PreflightTest, NonFiniteDataRejectedUnderEveryPolicy) {
  Network net = dopf::feeders::ieee13();
  net.load_mutable(0).p_ref[Phase::kA] =
      std::numeric_limits<double>::quiet_NaN();
  for (PreflightPolicy policy :
       {PreflightPolicy::kWarn, PreflightPolicy::kRemediate,
        PreflightPolicy::kStrict}) {
    const PreflightReport report = preflight(net, policy);
    EXPECT_FALSE(report.accepted) << to_string(policy);
    EXPECT_NE(report.rejection.find("non-finite"), std::string::npos);
  }
}

TEST(PreflightTest, RejectionLeavesProblemOutUntouched) {
  Network net = dopf::feeders::ieee13();
  net.load_mutable(0).p_ref[Phase::kA] =
      std::numeric_limits<double>::quiet_NaN();
  dopf::opf::DistributedProblem problem;
  const PreflightReport report =
      preflight(net, PreflightPolicy::kWarn, &problem);
  EXPECT_FALSE(report.accepted);
  EXPECT_EQ(problem.num_components(), 0u);
}

TEST(PreflightTest, StrictRejectsNearParallelRowsWarnAccepts) {
  const Network net = near_parallel_feeder();
  const PreflightReport strict = preflight(net, PreflightPolicy::kStrict);
  EXPECT_FALSE(strict.accepted);
  // The rejection must carry row-level provenance naming both rows.
  EXPECT_NE(strict.rejection.find("near-duplicate-rows"), std::string::npos)
      << strict.rejection;
  EXPECT_NE(strict.rejection.find("volt[l1"), std::string::npos)
      << strict.rejection;

  const PreflightReport warn = preflight(net, PreflightPolicy::kWarn);
  EXPECT_TRUE(warn.accepted) << warn.rejection;
  EXPECT_GE(warn.num_warnings(), 1u);

  const PreflightReport autofix = preflight(net, PreflightPolicy::kRemediate);
  EXPECT_TRUE(autofix.accepted) << autofix.rejection;
}

TEST(PreflightTest, RemediatePolicyEquilibratesAndArmsRegularization) {
  const Network net = dopf::feeders::ieee13();
  const PreflightReport report = preflight(net, PreflightPolicy::kRemediate);
  ASSERT_TRUE(report.accepted);
  EXPECT_TRUE(report.equilibrated);
  EXPECT_TRUE(report.projector_options().auto_regularize);
}

TEST(PreflightTest, NonRemediatePoliciesKeepExactProjector) {
  const Network net = dopf::feeders::ieee13();
  EXPECT_FALSE(preflight(net, PreflightPolicy::kWarn)
                   .projector_options()
                   .auto_regularize);
  EXPECT_FALSE(preflight(net, PreflightPolicy::kWarn).equilibrated);
}

TEST(PreflightTest, SummaryContainsVerdictAndConditioning) {
  const Network net = dopf::feeders::ieee13();
  const std::string accepted =
      preflight(net, PreflightPolicy::kWarn).summary();
  EXPECT_NE(accepted.find("verdict: accepted"), std::string::npos);
  EXPECT_NE(accepted.find("conditioning:"), std::string::npos);

  const std::string rejected =
      preflight(near_parallel_feeder(), PreflightPolicy::kStrict).summary();
  EXPECT_NE(rejected.find("verdict: REJECTED"), std::string::npos);
}

TEST(PreflightTest, WorstCondAndHealthCountsAreConsistent) {
  const Network net = dopf::feeders::ieee13();
  const PreflightReport report = preflight(net, PreflightPolicy::kWarn);
  ASSERT_TRUE(report.accepted);
  EXPECT_EQ(report.count_health(BlockHealth::kHealthy) +
                report.count_health(BlockHealth::kMarginal) +
                report.count_health(BlockHealth::kDegenerate),
            report.blocks.size());
  EXPECT_GE(report.worst_cond(), 1.0);
}

// --- run_scenario_preflight: validating a ScenarioBinding delta without
// re-sanitizing the unchanged topology.

TEST(ScenarioPreflightTest, LoadOnlyScenarioReusesEveryComponentVerdict) {
  const Network net = dopf::feeders::ieee13();
  const auto base = dopf::opf::decompose(net);
  // A pure objective/bounds/rhs perturbation: scale c. Components' A
  // blocks are untouched, so conditioning analysis must be skipped for all.
  auto scenario = base;
  for (double& v : scenario.c) v *= 1.25;

  const PreflightReport report = run_scenario_preflight(base, scenario);
  EXPECT_TRUE(report.accepted) << report.rejection;
  EXPECT_EQ(report.scenario_components_reused, base.num_components());
  EXPECT_TRUE(report.blocks.empty());  // no block re-analyzed
}

TEST(ScenarioPreflightTest, ChangedComponentIsReanalyzed) {
  const Network net = dopf::feeders::ieee13();
  const auto base = dopf::opf::decompose(net);
  auto scenario = base;
  auto& a = scenario.components[0].a;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) *= 2.0;
  }
  const PreflightReport report = run_scenario_preflight(base, scenario);
  EXPECT_TRUE(report.accepted) << report.rejection;
  EXPECT_EQ(report.scenario_components_reused, base.num_components() - 1);
  EXPECT_EQ(report.blocks.size(), 1u);
}

TEST(ScenarioPreflightTest, LayoutMismatchIsRejectedAsNewModel) {
  const Network net = dopf::feeders::ieee13();
  const auto base = dopf::opf::decompose(net);
  dopf::opf::DecomposeOptions dec;
  dec.merge_leaves = false;  // different component layout
  const auto other = dopf::opf::decompose(net, dopf::opf::build_model(net),
                                          dec);
  const PreflightReport report = run_scenario_preflight(base, other);
  EXPECT_FALSE(report.accepted);
  EXPECT_NE(report.rejection.find("rebuild the SolveModel"),
            std::string::npos)
      << report.rejection;
}

TEST(ScenarioPreflightTest, NonFiniteScenarioDataRejected) {
  const Network net = dopf::feeders::ieee13();
  const auto base = dopf::opf::decompose(net);

  auto bad_c = base;
  bad_c.c[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(run_scenario_preflight(base, bad_c).accepted);

  auto bad_b = base;
  bad_b.components[0].b[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(run_scenario_preflight(base, bad_b).accepted);

  auto inverted = base;
  inverted.lb[0] = 1.0;
  inverted.ub[0] = -1.0;
  const PreflightReport report = run_scenario_preflight(base, inverted);
  EXPECT_FALSE(report.accepted);
  EXPECT_NE(report.rejection.find("bounds"), std::string::npos)
      << report.rejection;
}

}  // namespace
}  // namespace dopf::robust
