#include "robust/conditioning.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "feeders/ieee13.hpp"
#include "opf/model.hpp"

namespace dopf::robust {
namespace {

using dopf::linalg::Matrix;

TEST(ConditioningTest, IdentityGramHasUnitCondition) {
  Matrix a{{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  EXPECT_NEAR(estimate_gram_cond(a), 1.0, 1e-9);
}

TEST(ConditioningTest, DiagonalScalingIsEstimatedAccurately) {
  // G = diag(1, 100) => cond(G) = 100 exactly; the power/inverse iteration
  // estimate must land within a few percent.
  Matrix a{{1.0, 0.0}, {0.0, 10.0}};
  EXPECT_NEAR(estimate_gram_cond(a), 100.0, 1.0);
}

TEST(ConditioningTest, ParallelRowsGiveInfiniteCondition) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_TRUE(std::isinf(estimate_gram_cond(a)));
}

TEST(ConditioningTest, EstimateIsDeterministic) {
  Matrix a{{3.0, 1.0, 0.5}, {0.2, 2.0, 1.0}};
  const double first = estimate_gram_cond(a);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(estimate_gram_cond(a), first);
  }
}

dopf::opf::Component make_component(Matrix a) {
  dopf::opf::Component comp;
  comp.name = "test:block";
  comp.rows_before_reduction = a.rows();
  comp.b.assign(a.rows(), 0.0);
  comp.global.resize(a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    comp.global[j] = static_cast<int>(j);
  }
  comp.a = std::move(a);
  return comp;
}

TEST(ConditioningTest, HealthyBlockClassified) {
  const BlockConditioning b =
      analyze_component(make_component(Matrix{{1.0, 0.0}, {0.0, 1.0}}));
  EXPECT_EQ(b.health, BlockHealth::kHealthy);
  EXPECT_EQ(b.rank, 2u);
  EXPECT_EQ(b.ridge, 0.0);
}

TEST(ConditioningTest, MarginalBlockClassified) {
  // cond(G) = 1e10: above the 1e8 marginal threshold, below 1e12.
  const BlockConditioning b =
      analyze_component(make_component(Matrix{{1.0, 0.0}, {0.0, 1e5}}));
  EXPECT_EQ(b.health, BlockHealth::kMarginal);
}

TEST(ConditioningTest, DegenerateBlockClassified) {
  // cond(G) = 1e14, but the Cholesky still succeeds: degenerate, finite.
  const BlockConditioning b =
      analyze_component(make_component(Matrix{{1.0, 0.0}, {0.0, 1e7}}));
  EXPECT_EQ(b.health, BlockHealth::kDegenerate);
  EXPECT_TRUE(std::isfinite(b.cond));
}

TEST(ConditioningTest, RankDeficientBlockProbesRidge) {
  // Nearly parallel rows: the exact Gram Cholesky fails, and the analyzer
  // must report both the failure (cond = inf) and the ridge the remediation
  // path would need.
  const BlockConditioning b =
      analyze_component(make_component(Matrix{{1.0, 0.0}, {1.0, 1e-7}}));
  EXPECT_EQ(b.health, BlockHealth::kDegenerate);
  EXPECT_TRUE(std::isinf(b.cond));
  EXPECT_GT(b.ridge, 0.0);
}

TEST(ConditioningTest, Ieee13BlocksAreAllHealthy) {
  // The paper's flagship feeder must pass its own preprocessing cleanly:
  // every component block well-conditioned, no ridge needed anywhere.
  const auto net = dopf::feeders::ieee13();
  const auto problem =
      dopf::opf::decompose(net, dopf::opf::build_model(net));
  const std::vector<BlockConditioning> blocks = analyze_conditioning(problem);
  ASSERT_EQ(blocks.size(), problem.num_components());
  for (const BlockConditioning& b : blocks) {
    EXPECT_EQ(b.health, BlockHealth::kHealthy) << b.component;
    EXPECT_EQ(b.ridge, 0.0) << b.component;
    EXPECT_EQ(b.rank, b.rows) << b.component;
  }
}

}  // namespace
}  // namespace dopf::robust
