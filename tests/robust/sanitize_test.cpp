#include "robust/sanitize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "feeders/feeder_io.hpp"
#include "feeders/ieee13.hpp"
#include "opf/model.hpp"

namespace dopf::robust {
namespace {

using dopf::network::Network;
using dopf::network::Phase;

bool has_issue(const std::vector<Issue>& issues, IssueCode code,
               Severity severity) {
  for (const Issue& issue : issues) {
    if (issue.code == code && issue.severity == severity) return true;
  }
  return false;
}

const Issue* find_issue(const std::vector<Issue>& issues, IssueCode code) {
  for (const Issue& issue : issues) {
    if (issue.code == code) return &issue;
  }
  return nullptr;
}

TEST(SanitizeNetworkTest, CleanFeederHasNoErrors) {
  const std::vector<Issue> issues = sanitize_network(dopf::feeders::ieee13());
  EXPECT_EQ(count_severity(issues, Severity::kError), 0u);
}

TEST(SanitizeNetworkTest, NonFiniteLoadIsErrorWithProvenance) {
  Network net = dopf::feeders::ieee13();
  net.load_mutable(0).p_ref[Phase::kA] =
      std::numeric_limits<double>::quiet_NaN();
  const std::vector<Issue> issues = sanitize_network(net);
  const Issue* issue = find_issue(issues, IssueCode::kNonFiniteData);
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->severity, Severity::kError);
  EXPECT_EQ(issue->site, "load:" + net.load(0).name);
  EXPECT_NE(issue->message.find("p_ref"), std::string::npos);
}

TEST(SanitizeNetworkTest, InvertedVoltageBoundsAreError) {
  Network net = dopf::feeders::ieee13();
  auto& bus = net.bus_mutable(1);
  const Phase p = *bus.phases.phases().begin();
  std::swap(bus.w_min[p], bus.w_max[p]);
  bus.w_min[p] += 0.05;  // ensure strictly inverted
  const std::vector<Issue> issues = sanitize_network(net);
  EXPECT_TRUE(has_issue(issues, IssueCode::kInvertedBounds, Severity::kError));
}

TEST(SanitizeNetworkTest, PinnedBoundsAreInfoOnly) {
  Network net = dopf::feeders::ieee13();
  auto& bus = net.bus_mutable(1);
  const Phase p = *bus.phases.phases().begin();
  bus.w_max[p] = bus.w_min[p];
  const std::vector<Issue> issues = sanitize_network(net);
  EXPECT_TRUE(has_issue(issues, IssueCode::kDegenerateBox, Severity::kInfo));
  EXPECT_EQ(count_severity(issues, Severity::kError), 0u);
}

TEST(SanitizeNetworkTest, NonPositiveTapRatioIsError) {
  Network net = dopf::feeders::ieee13();
  auto& line = net.line_mutable(0);
  line.tap_ratio[*line.phases.phases().begin()] = -1.0;
  const std::vector<Issue> issues = sanitize_network(net);
  EXPECT_TRUE(has_issue(issues, IssueCode::kBadScalar, Severity::kError));
}

TEST(SanitizeNetworkTest, OrphanPhaseIsWarning) {
  // Bus b carries phase c, but its only incident line is ab: nothing can
  // deliver power to that phase.
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 1 1 1 0 0 0 0 0 0\n"
      "bus b abc 0.9 0.9 0.9 1.1 1.1 1.1 0 0 0 0 0 0\n"
      "gen g a abc 0 0 0 inf inf inf -inf -inf -inf inf inf inf 1\n"
      "line l a b ab 0 1 1 1 inf inf inf "
      "0.01 0 0 0 0.01 0 0 0 0 0.02 0 0 0 0.02 0 0 0 0 "
      "0 0 0 0 0 0 0 0 0 0 0 0\n");
  const Network net = dopf::feeders::read_feeder(in);
  const std::vector<Issue> issues = sanitize_network(net);
  const Issue* issue = find_issue(issues, IssueCode::kOrphanPhase);
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->severity, Severity::kWarning);
  EXPECT_EQ(issue->site, "bus:b");
}

TEST(SanitizeNetworkTest, MissingGeneratorIsError) {
  // read_feeder() would throw on this via Network::validate(); the
  // sanitizer instead reports it as a collected finding.
  Network net;
  dopf::network::Bus bus;
  bus.name = "a";
  bus.phases = dopf::network::PhaseSet::abc();
  net.add_bus(bus);
  const std::vector<Issue> issues = sanitize_network(net);
  EXPECT_TRUE(has_issue(issues, IssueCode::kNoGenerator, Severity::kError));
}

TEST(SanitizeNetworkTest, CollectsEveryFindingNotJustTheFirst) {
  // Unlike Network::validate(), sanitation reports ALL defects at once.
  Network net = dopf::feeders::ieee13();
  net.load_mutable(0).p_ref[Phase::kA] =
      std::numeric_limits<double>::quiet_NaN();
  auto& line = net.line_mutable(0);
  line.tap_ratio[*line.phases.phases().begin()] = -1.0;
  const std::vector<Issue> issues = sanitize_network(net);
  EXPECT_TRUE(has_issue(issues, IssueCode::kNonFiniteData, Severity::kError));
  EXPECT_TRUE(has_issue(issues, IssueCode::kBadScalar, Severity::kError));
  EXPECT_GE(count_severity(issues, Severity::kError), 2u);
}

TEST(SanitizeModelTest, CleanModelHasNoErrors) {
  const auto net = dopf::feeders::ieee13();
  const auto model = dopf::opf::build_model(net);
  const std::vector<Issue> issues = sanitize_model(model);
  EXPECT_EQ(count_severity(issues, Severity::kError), 0u);
}

TEST(SanitizeModelTest, NonFiniteCoefficientIsError) {
  const auto net = dopf::feeders::ieee13();
  auto model = dopf::opf::build_model(net);
  ASSERT_FALSE(model.equations.empty());
  ASSERT_FALSE(model.equations[0].terms.empty());
  model.equations[0].terms[0].second =
      std::numeric_limits<double>::quiet_NaN();
  const std::vector<Issue> issues = sanitize_model(model);
  const Issue* issue = find_issue(issues, IssueCode::kNonFiniteData);
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->severity, Severity::kError);
  EXPECT_EQ(issue->site, "equation:" + model.equations[0].name);
}

TEST(SanitizeModelTest, RowScaleDisparityGraduatesWarningToError) {
  const auto net = dopf::feeders::ieee13();
  auto model = dopf::opf::build_model(net);
  ASSERT_GE(model.equations[0].terms.size(), 2u);
  model.equations[0].terms[0].second = 1.0;
  model.equations[0].terms[1].second = 1e-9;  // 1e9x spread: warning
  EXPECT_TRUE(has_issue(sanitize_model(model), IssueCode::kRowScaleDisparity,
                        Severity::kWarning));
  model.equations[0].terms[1].second = 1e-13;  // 1e13x spread: error
  EXPECT_TRUE(has_issue(sanitize_model(model), IssueCode::kRowScaleDisparity,
                        Severity::kError));
}

// Two-equation model in one owner group with a controlled angle between
// the rows: row B = (1, 1 + delta) against row A = (1, 1).
dopf::opf::OpfModel two_row_model(double delta, int owner_b = 7) {
  // OpfModel carries a VariableIndex that needs a network; the equation
  // checks under test only look at model.equations, so reuse a real model
  // shell and replace its rows.
  dopf::opf::OpfModel model = dopf::opf::build_model(dopf::feeders::ieee13());
  model.equations.clear();
  dopf::opf::Equation a;
  a.name = "row_a";
  a.owner_id = 7;
  a.add(0, 1.0);
  a.add(1, 1.0);
  dopf::opf::Equation b;
  b.name = "row_b";
  b.owner_id = owner_b;
  b.add(0, 1.0);
  b.add(1, 1.0 + delta);
  model.equations.push_back(a);
  model.equations.push_back(b);
  return model;
}

TEST(SanitizeModelTest, ExactDuplicateRowIsInfo) {
  const std::vector<Issue> issues = sanitize_model(two_row_model(0.0));
  const Issue* issue = find_issue(issues, IssueCode::kNearDuplicateRows);
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->severity, Severity::kInfo);
  EXPECT_EQ(count_severity(issues, Severity::kError), 0u);
}

TEST(SanitizeModelTest, NearDuplicateRowIsWarningWithBothRowNames) {
  // delta = 2e-5 gives 1 - |cos| ~ 5e-11: clearly past machine precision,
  // clearly inside the 1e-8 near-parallel tolerance.
  const std::vector<Issue> issues = sanitize_model(two_row_model(2e-5));
  const Issue* issue = find_issue(issues, IssueCode::kNearDuplicateRows);
  ASSERT_NE(issue, nullptr);
  EXPECT_EQ(issue->severity, Severity::kWarning);
  EXPECT_NE(issue->site.find("row_a"), std::string::npos);
  EXPECT_NE(issue->site.find("row_b"), std::string::npos);
}

TEST(SanitizeModelTest, ClearlySeparatedRowsNotFlagged) {
  // delta = 0.1 is an ordinary pair of independent constraints.
  const std::vector<Issue> issues = sanitize_model(two_row_model(0.1));
  EXPECT_EQ(find_issue(issues, IssueCode::kNearDuplicateRows), nullptr);
}

TEST(SanitizeModelTest, ParallelRowsInDifferentComponentsNotCompared) {
  // The Gram matrices are per component; duplicate rows across different
  // owners cannot break any A_s A_s^T and must not be flagged.
  const std::vector<Issue> issues =
      sanitize_model(two_row_model(0.0, /*owner_b=*/1007));
  EXPECT_EQ(find_issue(issues, IssueCode::kNearDuplicateRows), nullptr);
}

}  // namespace
}  // namespace dopf::robust
