#include "network/network.hpp"

#include <gtest/gtest.h>

namespace dopf::network {
namespace {

Network two_bus() {
  Network net;
  Bus b;
  b.name = "a";
  net.add_bus(b);
  b.name = "b";
  net.add_bus(b);
  Line l;
  l.name = "ab";
  l.from_bus = 0;
  l.to_bus = 1;
  net.add_line(l);
  Generator g;
  g.name = "sub";
  g.bus = 0;
  net.add_generator(g);
  return net;
}

TEST(NetworkTest, AddAssignsSequentialIds) {
  Network net = two_bus();
  EXPECT_EQ(net.bus(0).name, "a");
  EXPECT_EQ(net.bus(1).name, "b");
  EXPECT_EQ(net.line(0).name, "ab");
  EXPECT_EQ(net.generator(0).bus, 0);
}

TEST(NetworkTest, AdjacencyAndOrientation) {
  Network net = two_bus();
  const auto at0 = net.lines_at(0);
  const auto at1 = net.lines_at(1);
  ASSERT_EQ(at0.size(), 1u);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_TRUE(at0[0].from_side);
  EXPECT_FALSE(at1[0].from_side);
  EXPECT_EQ(net.degree(0), 1u);
}

TEST(NetworkTest, LeafBusesAreDegreeOne) {
  Network net = two_bus();
  Bus b;
  b.name = "c";
  net.add_bus(b);
  Line l;
  l.from_bus = 1;
  l.to_bus = 2;
  net.add_line(l);
  const auto leaves = net.leaf_buses();
  ASSERT_EQ(leaves.size(), 2u);  // buses 0 and 2
  EXPECT_EQ(leaves[0], 0);
  EXPECT_EQ(leaves[1], 2);
}

TEST(NetworkTest, RadialAndConnectedChecks) {
  Network net = two_bus();
  EXPECT_TRUE(net.is_connected());
  EXPECT_TRUE(net.is_radial());
  // Add a parallel line: still connected, no longer radial.
  Line l;
  l.from_bus = 0;
  l.to_bus = 1;
  net.add_line(l);
  EXPECT_TRUE(net.is_connected());
  EXPECT_FALSE(net.is_radial());
}

TEST(NetworkTest, DisconnectedGraphDetected) {
  Network net = two_bus();
  Bus b;
  b.name = "island";
  net.add_bus(b);
  EXPECT_FALSE(net.is_connected());
  EXPECT_THROW(net.validate(), NetworkError);
}

TEST(NetworkTest, UnknownBusReferencesThrow) {
  Network net;
  Bus b;
  net.add_bus(b);
  Generator g;
  g.bus = 7;
  EXPECT_THROW(net.add_generator(g), NetworkError);
  Load ld;
  ld.bus = -1;
  EXPECT_THROW(net.add_load(ld), NetworkError);
  Line l;
  l.from_bus = 0;
  l.to_bus = 9;
  EXPECT_THROW(net.add_line(l), NetworkError);
}

TEST(NetworkTest, SelfLoopRejected) {
  Network net;
  net.add_bus(Bus{});
  Line l;
  l.from_bus = 0;
  l.to_bus = 0;
  EXPECT_THROW(net.add_line(l), NetworkError);
}

TEST(NetworkTest, PhaseMismatchFailsValidation) {
  Network net;
  Bus b;
  b.phases = PhaseSet::ab();
  net.add_bus(b);
  b.phases = PhaseSet::abc();
  net.add_bus(b);
  Line l;
  l.from_bus = 0;
  l.to_bus = 1;
  l.phases = PhaseSet::abc();  // not a subset of bus 0's "ab"
  net.add_line(l);
  Generator g;
  g.bus = 1;
  net.add_generator(g);
  EXPECT_THROW(net.validate(), NetworkError);
}

TEST(NetworkTest, TwoPhaseDeltaLoadRejected) {
  Network net = two_bus();
  Load ld;
  ld.bus = 1;
  ld.phases = PhaseSet::ab();
  ld.connection = Connection::kDelta;
  net.add_load(ld);
  EXPECT_THROW(net.validate(), NetworkError);
}

TEST(NetworkTest, InvertedGeneratorBoundsRejected) {
  Network net = two_bus();
  Generator g;
  g.bus = 1;
  g.p_min = PerPhase<double>::uniform(2.0);
  g.p_max = PerPhase<double>::uniform(1.0);
  net.add_generator(g);
  EXPECT_THROW(net.validate(), NetworkError);
}

TEST(NetworkTest, MissingGeneratorRejected) {
  Network net;
  net.add_bus(Bus{});
  EXPECT_THROW(net.validate(), NetworkError);
}

TEST(NetworkTest, NegativeZipExponentRejected) {
  Network net = two_bus();
  Load ld;
  ld.bus = 1;
  ld.alpha = PerPhase<double>::uniform(-1.0);
  net.add_load(ld);
  EXPECT_THROW(net.validate(), NetworkError);
}

TEST(NetworkTest, ValidNetworkPassesValidation) {
  Network net = two_bus();
  Load ld;
  ld.bus = 1;
  ld.p_ref = PerPhase<double>::uniform(0.1);
  net.add_load(ld);
  EXPECT_NO_THROW(net.validate());
}

TEST(NetworkTest, SummaryMentionsCounts) {
  Network net = two_bus();
  const std::string s = net.summary();
  EXPECT_NE(s.find("2 buses"), std::string::npos);
  EXPECT_NE(s.find("1 lines"), std::string::npos);
  EXPECT_NE(s.find("radial"), std::string::npos);
}

TEST(NetworkTest, BusWithoutPhasesRejected) {
  Network net;
  Bus b;
  b.phases = PhaseSet::none();
  EXPECT_THROW(net.add_bus(b), NetworkError);
}

}  // namespace
}  // namespace dopf::network
