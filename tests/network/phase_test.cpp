#include "network/phase.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace dopf::network {
namespace {

TEST(PhaseSetTest, CountAndHas) {
  EXPECT_EQ(PhaseSet::abc().count(), 3u);
  EXPECT_EQ(PhaseSet::ab().count(), 2u);
  EXPECT_EQ(PhaseSet::c().count(), 1u);
  EXPECT_EQ(PhaseSet::none().count(), 0u);
  EXPECT_TRUE(PhaseSet::ac().has(Phase::kA));
  EXPECT_FALSE(PhaseSet::ac().has(Phase::kB));
  EXPECT_TRUE(PhaseSet::ac().has(Phase::kC));
}

TEST(PhaseSetTest, SubsetAndIntersect) {
  EXPECT_TRUE(PhaseSet::a().subset_of(PhaseSet::ab()));
  EXPECT_FALSE(PhaseSet::ab().subset_of(PhaseSet::a()));
  EXPECT_TRUE(PhaseSet::none().subset_of(PhaseSet::a()));
  EXPECT_EQ(PhaseSet::ab().intersect(PhaseSet::bc()), PhaseSet::b());
  EXPECT_EQ(PhaseSet::a().intersect(PhaseSet::bc()), PhaseSet::none());
}

TEST(PhaseSetTest, IterationVisitsExactlyPresentPhases) {
  std::vector<Phase> seen;
  for (Phase p : PhaseSet::ac().phases()) seen.push_back(p);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Phase::kA);
  EXPECT_EQ(seen[1], Phase::kC);

  seen.clear();
  for (Phase p : PhaseSet::none().phases()) seen.push_back(p);
  EXPECT_TRUE(seen.empty());
}

TEST(PhaseSetTest, WithAddsPhase) {
  const PhaseSet s = PhaseSet::a().with(Phase::kC);
  EXPECT_EQ(s, PhaseSet::ac());
  EXPECT_EQ(s.with(Phase::kC), s);  // idempotent
}

TEST(PhaseSetTest, SingleFactory) {
  EXPECT_EQ(PhaseSet::single(Phase::kB), PhaseSet::b());
}

TEST(PhaseSetTest, ToStringAndParseRoundTrip) {
  for (const PhaseSet s : {PhaseSet::a(), PhaseSet::bc(), PhaseSet::abc(),
                           PhaseSet::ac(), PhaseSet::none()}) {
    EXPECT_EQ(PhaseSet::parse(s.to_string()), s) << s.to_string();
  }
  EXPECT_EQ(PhaseSet::parse("ABC"), PhaseSet::abc());
}

TEST(PhaseSetTest, ParseRejectsGarbage) {
  EXPECT_THROW(PhaseSet::parse("ax"), std::invalid_argument);
  EXPECT_THROW(PhaseSet::parse("1"), std::invalid_argument);
}

TEST(PerPhaseTest, IndexingByPhase) {
  PerPhase<double> v = PerPhase<double>::uniform(2.0);
  EXPECT_EQ(v[Phase::kB], 2.0);
  v[Phase::kC] = 5.0;
  EXPECT_EQ(v[Phase::kC], 5.0);
  EXPECT_EQ(v[Phase::kA], 2.0);
}

TEST(PhaseMatrixTest, DiagonalFactoryAndIndexing) {
  PhaseMatrix m = PhaseMatrix::diagonal(3.0);
  EXPECT_EQ(m(Phase::kA, Phase::kA), 3.0);
  EXPECT_EQ(m(Phase::kA, Phase::kB), 0.0);
  m(Phase::kB, Phase::kC) = -1.0;
  EXPECT_EQ(m(1, 2), -1.0);
}

}  // namespace
}  // namespace dopf::network
