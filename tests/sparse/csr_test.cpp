#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

namespace dopf::sparse {
namespace {

TEST(CsrTest, FromTripletsSortsAndSumsDuplicates) {
  const std::vector<Triplet> trips = {
      {1, 2, 1.0}, {0, 1, 2.0}, {1, 2, 3.0}, {1, 0, -1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, 3, trips);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.at(0, 1), 2.0);
  EXPECT_EQ(m.at(1, 2), 4.0);
  EXPECT_EQ(m.at(1, 0), -1.0);
  EXPECT_EQ(m.at(0, 0), 0.0);
}

TEST(CsrTest, DuplicatesCancellingToZeroAreDropped) {
  const std::vector<Triplet> trips = {{0, 0, 1.0}, {0, 0, -1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(1, 1, trips);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(CsrTest, OutOfRangeTripletThrows) {
  const std::vector<Triplet> trips = {{0, 5, 1.0}};
  EXPECT_THROW(CsrMatrix::from_triplets(2, 3, trips), std::out_of_range);
}

TEST(CsrTest, IdentityActsAsIdentity) {
  const CsrMatrix id = CsrMatrix::identity(4);
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y(4, -1.0);
  id.multiply(x, y);
  EXPECT_EQ(y, x);
}

TEST(CsrTest, MultiplyAlphaBeta) {
  const std::vector<Triplet> trips = {{0, 0, 2.0}, {1, 1, 3.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, 2, trips);
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {10.0, 10.0};
  m.multiply(x, y, 2.0, 0.5);  // y = 2 A x + 0.5 y
  EXPECT_EQ(y[0], 9.0);
  EXPECT_EQ(y[1], 11.0);
}

TEST(CsrTest, MultiplyTransposeMatchesExplicitTranspose) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Triplet> trips;
  for (int k = 0; k < 40; ++k) {
    trips.push_back({rng() % 7, rng() % 9, dist(rng)});
  }
  const CsrMatrix m = CsrMatrix::from_triplets(7, 9, trips);
  const CsrMatrix mt = m.transposed();
  std::vector<double> x(7);
  for (double& v : x) v = dist(rng);
  std::vector<double> y1(9, 0.0), y2(9, 0.0);
  m.multiply_transpose(x, y1);
  mt.multiply(x, y2);
  for (int j = 0; j < 9; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-13);
}

TEST(CsrTest, TransposeTwiceIsIdentityOperation) {
  const std::vector<Triplet> trips = {{0, 2, 1.5}, {1, 0, -2.0}, {2, 1, 3.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(3, 3, trips);
  const CsrMatrix mtt = m.transposed().transposed();
  EXPECT_EQ(mtt.nnz(), m.nnz());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(mtt.at(i, j), m.at(i, j));
  }
}

TEST(CsrTest, ColumnSqNormsIsDiagOfAtA) {
  const std::vector<Triplet> trips = {
      {0, 0, 1.0}, {1, 0, 2.0}, {0, 1, 3.0}, {2, 1, 1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(3, 2, trips);
  const std::vector<double> d = m.column_sq_norms();
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_DOUBLE_EQ(d[1], 10.0);
}

TEST(CsrTest, MultiplySizeMismatchThrows) {
  const CsrMatrix m(2, 3);
  std::vector<double> x(2, 0.0), y(2, 0.0);
  EXPECT_THROW(m.multiply(x, y), std::invalid_argument);
}

TEST(CsrTest, EmptyMatrixMultiplyGivesZero) {
  const CsrMatrix m(3, 4);
  const std::vector<double> x(4, 1.0);
  std::vector<double> y(3, 9.0);
  m.multiply(x, y);
  for (double v : y) EXPECT_EQ(v, 0.0);
}

TEST(CsrTest, DropTolRemovesSmallEntries) {
  const std::vector<Triplet> trips = {{0, 0, 1e-14}, {0, 1, 1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(1, 2, trips, 1e-12);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.at(0, 1), 1.0);
}

}  // namespace
}  // namespace dopf::sparse
