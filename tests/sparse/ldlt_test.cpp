#include "sparse/ldlt.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/cholesky.hpp"
#include "sparse/ordering.hpp"

namespace dopf::sparse {
namespace {

CsrMatrix laplacian_plus_identity(std::size_t n, unsigned seed,
                                  double extra_edge_prob = 0.1) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<Triplet> trips;
  std::vector<double> diag(n, 1.0);
  auto add_edge = [&](std::size_t i, std::size_t j, double w) {
    trips.push_back({static_cast<std::int64_t>(i),
                     static_cast<std::int64_t>(j), -w});
    trips.push_back({static_cast<std::int64_t>(j),
                     static_cast<std::int64_t>(i), -w});
    diag[i] += w;
    diag[j] += w;
  };
  for (std::size_t i = 1; i < n; ++i) {
    add_edge(i, rng() % i, 0.5 + unit(rng));  // random tree
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; ++j) {
      if (unit(rng) < extra_edge_prob / static_cast<double>(n)) {
        add_edge(i, j, unit(rng));
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({static_cast<std::int64_t>(i),
                     static_cast<std::int64_t>(i), diag[i]});
  }
  return CsrMatrix::from_triplets(n, n, trips);
}

class LdltOrderingSweep
    : public ::testing::TestWithParam<std::tuple<Ordering, std::size_t>> {};

TEST_P(LdltOrderingSweep, SolvesRandomSpdSystem) {
  const auto [ordering, n] = GetParam();
  const CsrMatrix a = laplacian_plus_identity(n, static_cast<unsigned>(n));
  SparseLdlt ldlt(a, ordering);
  ldlt.factorize(a);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = std::cos(static_cast<double>(i));
  }
  std::vector<double> b(n, 0.0);
  a.multiply(x_true, b);
  const std::vector<double> x = ldlt.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LdltOrderingSweep,
    ::testing::Combine(::testing::Values(Ordering::kNatural, Ordering::kRcm),
                       ::testing::Values<std::size_t>(1, 2, 5, 20, 100, 400)));

TEST(LdltTest, MatchesDenseCholeskyOnSmallMatrix) {
  const CsrMatrix a = laplacian_plus_identity(8, 3, 2.0);
  SparseLdlt ldlt(a, Ordering::kRcm);
  ldlt.factorize(a);

  dopf::linalg::Matrix dense(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) dense(i, j) = a.at(i, j);
  }
  const dopf::linalg::Cholesky chol(dense);
  std::vector<double> b(8);
  for (std::size_t i = 0; i < 8; ++i) b[i] = static_cast<double>(i) - 4.0;
  const auto x1 = ldlt.solve(b);
  const auto x2 = chol.solve(b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(LdltTest, RefactorizeWithNewValuesSamePattern) {
  CsrMatrix a = laplacian_plus_identity(30, 9);
  SparseLdlt ldlt(a, Ordering::kRcm);
  ldlt.factorize(a);
  // Scale all values by 3: same pattern, new numbers.
  auto vals = a.values_mutable();
  for (double& v : vals) v *= 3.0;
  ldlt.factorize(a);
  std::vector<double> x_true(30, 1.0);
  std::vector<double> b(30, 0.0);
  a.multiply(x_true, b);
  const std::vector<double> x = ldlt.solve(b);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(x[i], 1.0, 1e-10);
}

TEST(LdltTest, LowerTriangleOnlyInputWorks) {
  // The factorization reads only entries with col <= row; passing just the
  // lower triangle must give the same result as the full matrix.
  const CsrMatrix full = laplacian_plus_identity(12, 21);
  std::vector<Triplet> lower;
  const auto rp = full.row_ptr();
  const auto ci = full.col_idx();
  const auto v = full.values();
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      if (static_cast<std::size_t>(ci[k]) <= i) {
        lower.push_back({static_cast<std::int64_t>(i), ci[k], v[k]});
      }
    }
  }
  const CsrMatrix lo = CsrMatrix::from_triplets(12, 12, lower);
  SparseLdlt l1(full, Ordering::kNatural);
  SparseLdlt l2(lo, Ordering::kNatural);
  l1.factorize(full);
  l2.factorize(lo);
  std::vector<double> b(12, 1.0);
  const auto x1 = l1.solve(b);
  const auto x2 = l2.solve(b);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-12);
}

TEST(LdltTest, IndefiniteMatrixThrows) {
  std::vector<Triplet> trips = {{0, 0, 1.0}, {1, 1, -1.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, trips);
  SparseLdlt ldlt(a, Ordering::kNatural);
  EXPECT_THROW(ldlt.factorize(a), dopf::linalg::SingularMatrixError);
}

TEST(LdltTest, DiagShiftRescuesSemidefinite) {
  std::vector<Triplet> trips = {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0},
                                {1, 1, 1.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, trips);
  SparseLdlt ldlt(a, Ordering::kNatural);
  EXPECT_THROW(ldlt.factorize(a), dopf::linalg::SingularMatrixError);
  EXPECT_NO_THROW(ldlt.factorize(a, 1e-8));
}

TEST(LdltTest, SolveBeforeFactorizeThrows) {
  const CsrMatrix a = CsrMatrix::identity(3);
  SparseLdlt ldlt(a);
  std::vector<double> b(3, 1.0);
  EXPECT_THROW(ldlt.solve(b), std::logic_error);
}

TEST(LdltTest, RcmReducesFillOnScrambledPath) {
  // Path graph with scrambled labels: natural ordering causes fill, RCM
  // keeps |L| = n - 1 off-diagonals.
  const std::size_t n = 64;
  std::vector<Triplet> trips;
  auto lbl = [n](std::size_t i) { return (i * 37) % n; };
  std::vector<double> diag(n, 1.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    trips.push_back({(std::int64_t)lbl(i), (std::int64_t)lbl(i + 1), -1.0});
    trips.push_back({(std::int64_t)lbl(i + 1), (std::int64_t)lbl(i), -1.0});
    diag[lbl(i)] += 1.0;
    diag[lbl(i + 1)] += 1.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({(std::int64_t)i, (std::int64_t)i, diag[i]});
  }
  const CsrMatrix a = CsrMatrix::from_triplets(n, n, trips);
  SparseLdlt natural(a, Ordering::kNatural);
  SparseLdlt rcm(a, Ordering::kRcm);
  EXPECT_LE(rcm.nnz_l(), n + 4);  // ~ n-1 for a path
  EXPECT_LT(rcm.nnz_l(), natural.nnz_l());
}

}  // namespace
}  // namespace dopf::sparse
