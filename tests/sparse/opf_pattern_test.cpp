/// Integration of the sparse stack on a realistic pattern: the OPF normal
/// equations A D A^T of the ieee123-class feeder, the exact system the
/// reference interior-point solver factorizes each iteration.

#include <gtest/gtest.h>

#include <random>

#include "feeders/synthetic.hpp"
#include "opf/model.hpp"
#include "sparse/ldlt.hpp"
#include "sparse/normal_equations.hpp"
#include "sparse/ordering.hpp"

namespace dopf::sparse {
namespace {

TEST(OpfPatternTest, NormalEquationsFactorizeAndSolve) {
  const auto net =
      dopf::feeders::synthetic_feeder(dopf::feeders::ieee123_spec());
  const auto model = dopf::opf::build_model(net);
  const CsrMatrix a = model.constraint_matrix();

  NormalEquations normal(a);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  std::vector<double> d(a.cols());
  for (double& v : d) v = dist(rng);

  SparseLdlt ldlt(normal.compute(a, d), Ordering::kRcm);
  ldlt.factorize(normal.matrix(), 1e-10);

  // Solve (A D A^T) y = rhs and verify the residual by explicit
  // multiplication through A and A^T.
  std::vector<double> y_true(a.rows());
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    y_true[i] = std::sin(0.1 * static_cast<double>(i));
  }
  std::vector<double> tmp(a.cols(), 0.0), rhs(a.rows(), 0.0);
  a.multiply_transpose(y_true, tmp);
  for (std::size_t j = 0; j < tmp.size(); ++j) tmp[j] *= d[j];
  a.multiply(tmp, rhs);

  const std::vector<double> y = ldlt.solve(rhs);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], y_true[i], 1e-6) << "row " << i;
  }
}

TEST(OpfPatternTest, RcmBeatsNaturalOrderingOnFeederPattern) {
  const auto net =
      dopf::feeders::synthetic_feeder(dopf::feeders::ieee123_spec());
  const auto model = dopf::opf::build_model(net);
  const CsrMatrix a = model.constraint_matrix();
  NormalEquations normal(a);
  std::vector<double> d(a.cols(), 1.0);
  const CsrMatrix& c = normal.compute(a, d);

  SparseLdlt natural(c, Ordering::kNatural);
  SparseLdlt rcm(c, Ordering::kRcm);
  // Radial feeders are near-tree: RCM should not lose (and typically wins).
  EXPECT_LE(rcm.nnz_l(), natural.nnz_l());
}

TEST(OpfPatternTest, RefactorizationIsStableAcrossScalingSweep) {
  // Mimic the IPM: the same pattern refactorized with scalings spanning
  // 12 orders of magnitude must stay solvable (with the diagonal shift).
  const auto net =
      dopf::feeders::synthetic_feeder(dopf::feeders::ieee123_spec());
  const auto model = dopf::opf::build_model(net);
  const CsrMatrix a = model.constraint_matrix();
  NormalEquations normal(a);
  std::vector<double> d(a.cols());
  SparseLdlt ldlt(normal.compute(a, d), Ordering::kRcm);
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> log_range(-6.0, 6.0);
  for (int sweep = 0; sweep < 5; ++sweep) {
    for (double& v : d) v = std::pow(10.0, log_range(rng));
    EXPECT_NO_THROW(ldlt.factorize(normal.compute(a, d), 1e-8))
        << "sweep " << sweep;
    std::vector<double> rhs(a.rows(), 1.0);
    const auto y = ldlt.solve(rhs);
    for (double v : y) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace dopf::sparse
