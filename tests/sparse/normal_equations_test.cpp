#include "sparse/normal_equations.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dopf::sparse {
namespace {

CsrMatrix random_rect(std::size_t m, std::size_t n, unsigned seed,
                      double density) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (unit(rng) < density) {
        trips.push_back({static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(j), val(rng)});
      }
    }
  }
  return CsrMatrix::from_triplets(m, n, trips);
}

/// Dense reference: lower triangle of A diag(d) A^T.
std::vector<std::vector<double>> dense_adat(const CsrMatrix& a,
                                            std::span<const double> d) {
  const std::size_t m = a.rows();
  std::vector<std::vector<double>> c(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        sum += a.at(i, k) * d[k] * a.at(j, k);
      }
      c[i][j] = sum;
    }
  }
  return c;
}

class NormalEquationsSweep : public ::testing::TestWithParam<int> {};

TEST_P(NormalEquationsSweep, MatchesDenseReference) {
  const int seed = GetParam();
  const std::size_t m = 5 + seed % 5;
  const std::size_t n = 8 + seed % 7;
  const CsrMatrix a = random_rect(m, n, seed, 0.4);
  NormalEquations normal(a);
  std::mt19937 rng(seed + 1000);
  std::uniform_real_distribution<double> dist(0.1, 3.0);
  std::vector<double> d(n);
  for (double& v : d) v = dist(rng);

  const CsrMatrix& c = normal.compute(a, d);
  const auto ref = dense_adat(a, d);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(c.at(i, j), ref[i][j], 1e-12)
          << "entry (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalEquationsSweep, ::testing::Range(0, 10));

TEST(NormalEquationsTest, RecomputeWithNewScalingSamePattern) {
  const CsrMatrix a = random_rect(6, 9, 77, 0.5);
  NormalEquations normal(a);
  std::vector<double> d1(9, 1.0), d2(9, 2.0);
  const CsrMatrix c1 = normal.compute(a, d1);  // copy
  const CsrMatrix& c2 = normal.compute(a, d2);
  ASSERT_EQ(c1.nnz(), c2.nnz());
  for (std::size_t k = 0; k < c1.nnz(); ++k) {
    EXPECT_NEAR(c2.values()[k], 2.0 * c1.values()[k], 1e-12);
  }
}

TEST(NormalEquationsTest, DiagonalAlwaysPresent) {
  // A row of A with no entries must still get a (zero) diagonal slot so the
  // factorization's shift has somewhere to land.
  std::vector<Triplet> trips = {{0, 0, 1.0}};  // row 1 of A empty
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, trips);
  NormalEquations normal(a);
  std::vector<double> d = {1.0, 1.0};
  const CsrMatrix& c = normal.compute(a, d);
  // Lower triangle must contain both diagonal entries.
  EXPECT_EQ(c.at(0, 0), 1.0);
  EXPECT_EQ(c.at(1, 1), 0.0);
  const auto rp = c.row_ptr();
  EXPECT_EQ(rp[2] - rp[1], 1);  // the explicit zero diagonal is stored
}

TEST(NormalEquationsTest, ShapeMismatchThrows) {
  const CsrMatrix a = random_rect(3, 4, 1, 0.5);
  NormalEquations normal(a);
  std::vector<double> d(3, 1.0);  // wrong size
  EXPECT_THROW(normal.compute(a, d), std::invalid_argument);
}

}  // namespace
}  // namespace dopf::sparse
