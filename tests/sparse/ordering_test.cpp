#include "sparse/ordering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace dopf::sparse {
namespace {

CsrMatrix path_graph_laplacian(std::size_t n) {
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({static_cast<std::int64_t>(i),
                     static_cast<std::int64_t>(i), 2.0});
    if (i + 1 < n) {
      trips.push_back({static_cast<std::int64_t>(i),
                       static_cast<std::int64_t>(i + 1), -1.0});
      trips.push_back({static_cast<std::int64_t>(i + 1),
                       static_cast<std::int64_t>(i), -1.0});
    }
  }
  return CsrMatrix::from_triplets(n, n, trips);
}

TEST(OrderingTest, RcmReturnsValidPermutation) {
  const CsrMatrix a = path_graph_laplacian(10);
  const std::vector<int> perm = reverse_cuthill_mckee(a);
  ASSERT_EQ(perm.size(), 10u);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(OrderingTest, InvertPermutationRoundTrips) {
  const std::vector<int> perm = {2, 0, 3, 1};
  const std::vector<int> inv = invert_permutation(perm);
  for (std::size_t k = 0; k < perm.size(); ++k) {
    EXPECT_EQ(inv[perm[k]], static_cast<int>(k));
  }
}

TEST(OrderingTest, RcmKeepsPathBandwidthSmall) {
  // A path graph in a scrambled labeling has large bandwidth; RCM must
  // recover bandwidth 1.
  const std::size_t n = 31;
  std::vector<Triplet> trips;
  auto scramble = [n](std::size_t i) { return (i * 17) % n; };
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({static_cast<std::int64_t>(scramble(i)),
                     static_cast<std::int64_t>(scramble(i)), 2.0});
    if (i + 1 < n) {
      trips.push_back({static_cast<std::int64_t>(scramble(i)),
                       static_cast<std::int64_t>(scramble(i + 1)), -1.0});
      trips.push_back({static_cast<std::int64_t>(scramble(i + 1)),
                       static_cast<std::int64_t>(scramble(i)), -1.0});
    }
  }
  const CsrMatrix a = CsrMatrix::from_triplets(n, n, trips);
  const std::vector<int> perm = reverse_cuthill_mckee(a);
  const CsrMatrix p = permute_symmetric(a, perm);
  std::int64_t bandwidth = 0;
  const auto rp = p.row_ptr();
  const auto ci = p.col_idx();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::int64_t k = rp[i]; k < rp[i + 1]; ++k) {
      bandwidth = std::max(bandwidth,
                           std::abs(static_cast<std::int64_t>(i) - ci[k]));
    }
  }
  EXPECT_LE(bandwidth, 2);
}

TEST(OrderingTest, PermuteSymmetricPreservesValues) {
  const CsrMatrix a = path_graph_laplacian(6);
  const std::vector<int> perm = {5, 4, 3, 2, 1, 0};
  const CsrMatrix p = permute_symmetric(a, perm);
  // Reversal of a path keeps the same structure.
  EXPECT_EQ(p.nnz(), a.nnz());
  EXPECT_EQ(p.at(0, 0), 2.0);
  EXPECT_EQ(p.at(0, 1), -1.0);
}

TEST(OrderingTest, DisconnectedComponentsAreAllVisited) {
  std::vector<Triplet> trips = {{0, 1, 1.0}, {1, 0, 1.0}, {2, 3, 1.0},
                                {3, 2, 1.0}, {0, 0, 1.0}, {1, 1, 1.0},
                                {2, 2, 1.0}, {3, 3, 1.0}, {4, 4, 1.0}};
  const CsrMatrix a = CsrMatrix::from_triplets(5, 5, trips);
  const std::vector<int> perm = reverse_cuthill_mckee(a);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 5; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(OrderingTest, NonSquareThrows) {
  const CsrMatrix a(2, 3);
  EXPECT_THROW(reverse_cuthill_mckee(a), std::invalid_argument);
}

}  // namespace
}  // namespace dopf::sparse
