/// Stream-boundary cancellation and durable periodic checkpointing: a
/// cancelled stream records a byte-identical PREFIX of the uninterrupted
/// run, durably checkpoints its last completed step into the A/B pair, and
/// a resume from that pair replays the remaining steps byte-identically.
/// Durability itself (fsync, retries, failpoints) must never perturb the
/// recorded steps.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "feeders/ieee13.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/durable.hpp"
#include "stream/driver.hpp"
#include "stream/profile.hpp"

namespace dopf::stream {
namespace {

StreamProfile parse(const std::string& text) {
  std::istringstream in(text);
  return parse_profile(in);
}

/// A day of alternating load levels; every step re-solves (no held blocks
/// are long enough to trivialize warm starts).
StreamProfile day_profile(int steps) {
  std::ostringstream text;
  text << "profile cancelday\nsteps " << steps << "\n";
  for (int k = 0; k < steps; k += 2) {
    text << "step " << k << "\n  load constant scale "
         << (k % 4 == 0 ? "1.04" : "0.95") << "\n";
  }
  return parse(text.str());
}

StreamOptions base_options() {
  StreamOptions sopt;
  sopt.admm.eps_rel = 1e-2;
  sopt.admm.check_every = 10;
  sopt.preflight = "off";
  return sopt;
}

std::vector<std::string> step_lines(const StreamResult& result) {
  std::vector<std::string> lines;
  for (const auto& rec : result.steps) lines.push_back(record_line(rec));
  return lines;
}

/// TempDir() is shared across test runs and CheckpointStore adopts any
/// slot files already there, so every test starts from a clean A/B base.
std::string fresh_base(const std::string& name) {
  const std::string base = ::testing::TempDir() + "/" + name;
  for (const char* suffix : {"", ".a", ".b", ".tmp", ".a.tmp", ".b.tmp"}) {
    std::remove((base + suffix).c_str());
  }
  return base;
}

TEST(StreamCancelTest, PreCancelledTokenStopsBeforeFirstStep) {
  const auto net = dopf::feeders::ieee13();
  const auto profile = day_profile(8);
  dopf::core::CancelToken cancel;
  cancel.request("cancelled before start");
  StreamOptions sopt = base_options();
  sopt.cancel = &cancel;
  StreamDriver driver(net, profile, sopt);
  const StreamResult result = driver.run();
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.cancel_reason, "cancelled before start");
  EXPECT_TRUE(result.steps.empty());
  EXPECT_EQ(result.io.writes, 0) << "no completed step, nothing to persist";
}

TEST(StreamCancelTest, PeriodicCheckpointsAlternateGenerations) {
  const auto net = dopf::feeders::ieee13();
  const auto profile = day_profile(8);
  const std::string base = fresh_base("stream_periodic.ckpt");
  StreamOptions sopt = base_options();
  sopt.checkpoint_path = base;
  sopt.checkpoint_every_steps = 2;
  StreamDriver driver(net, profile, sopt);
  const StreamResult result = driver.run();
  ASSERT_TRUE(result.all_converged);
  EXPECT_EQ(result.io.writes, 4) << "8 steps / every 2 = 4 durable saves";
  EXPECT_EQ(result.io.retries, 0);

  const auto loaded = dopf::runtime::resolve_checkpoint(base);
  EXPECT_FALSE(loaded.fell_back);
  EXPECT_EQ(loaded.checkpoint.generation, 4u);
  // Both slots populated: the previous generation survives every save.
  EXPECT_EQ(dopf::runtime::load_checkpoint(
                loaded.path == base + ".a" ? base + ".b" : base + ".a")
                .generation,
            3u);
}

TEST(StreamCancelTest, DeadlinePrefixThenResumeReplaysByteIdentically) {
  const auto net = dopf::feeders::ieee13();
  const int kSteps = 40;
  const auto profile = day_profile(kSteps);

  // Reference: the uninterrupted day, no checkpointing at all.
  StreamOptions ref_opt = base_options();
  StreamDriver ref_driver(net, profile, ref_opt);
  const StreamResult ref = ref_driver.run();
  ASSERT_TRUE(ref.all_converged);
  const auto ref_lines = step_lines(ref);

  // Interrupted: a tight deadline lands somewhere inside the day. Where it
  // lands is timing-dependent; every property below must hold regardless.
  const std::string base = fresh_base("stream_deadline.ckpt");
  dopf::core::CancelToken cancel;
  cancel.set_deadline_after(0.02);
  StreamOptions cut_opt = base_options();
  cut_opt.cancel = &cancel;
  cut_opt.checkpoint_path = base;
  cut_opt.checkpoint_every_steps = 1;
  StreamDriver cut_driver(net, profile, cut_opt);
  const StreamResult cut = cut_driver.run();

  if (!cut.cancelled) {
    GTEST_SKIP() << "machine finished the whole day inside the deadline";
  }
  EXPECT_EQ(cut.cancel_reason, "deadline exceeded");
  ASSERT_LT(cut.steps.size(), static_cast<std::size_t>(kSteps));

  // Partial steps are discarded: the recorded steps are a byte-identical
  // prefix of the reference run.
  const auto cut_lines = step_lines(cut);
  for (std::size_t i = 0; i < cut_lines.size(); ++i) {
    ASSERT_EQ(cut_lines[i], ref_lines[i]) << "prefix step " << i;
  }

  if (cut.steps.empty()) return;  // nothing durable to resume from

  // The A/B pair holds the LAST COMPLETED step; resuming replays the rest
  // of the day byte-identically against the reference suffix.
  const auto loaded = dopf::runtime::resolve_checkpoint(base);
  EXPECT_FALSE(loaded.fell_back);
  StreamOptions tail_opt = base_options();
  tail_opt.resume_path = base;
  StreamDriver tail_driver(net, profile, tail_opt);
  const StreamResult tail = tail_driver.run();
  EXPECT_EQ(tail.first_step, cut.steps.back().step + 1);
  const auto tail_lines = step_lines(tail);
  ASSERT_EQ(cut_lines.size() + tail_lines.size(), ref_lines.size());
  for (std::size_t i = 0; i < tail_lines.size(); ++i) {
    ASSERT_EQ(tail_lines[i], ref_lines[cut_lines.size() + i])
        << "tail step " << i;
  }
}

TEST(StreamCancelTest, TransientWriteFaultDoesNotPerturbRecords) {
  const auto net = dopf::feeders::ieee13();
  const auto profile = day_profile(8);

  StreamOptions ref_opt = base_options();
  StreamDriver ref_driver(net, profile, ref_opt);
  const StreamResult ref = ref_driver.run();

  dopf::runtime::FsFaultInjector faults(
      dopf::runtime::FsFaultPlan::parse("enospc:op=2,times=2"));
  StreamOptions sopt = base_options();
  sopt.checkpoint_path = fresh_base("stream_faulty.ckpt");
  sopt.checkpoint_every_steps = 2;
  sopt.durable.faults = &faults;
  sopt.durable.retry_timeout_s = 1e-4;
  StreamDriver driver(net, profile, sopt);
  const StreamResult result = driver.run();

  ASSERT_TRUE(result.all_converged);
  EXPECT_EQ(result.io.retries, 2);
  EXPECT_GT(result.io.retry_seconds, 0.0);
  // Retried checkpoint I/O must leave the solve trajectory untouched.
  EXPECT_EQ(step_lines(result), step_lines(ref));
}

TEST(StreamCancelTest, ExhaustedWriteFaultSurfacesIoError) {
  const auto net = dopf::feeders::ieee13();
  const auto profile = day_profile(4);
  dopf::runtime::FsFaultInjector faults(
      dopf::runtime::FsFaultPlan::parse("enospc:op=1,times=99"));
  StreamOptions sopt = base_options();
  sopt.checkpoint_path = fresh_base("stream_enospc.ckpt");
  sopt.checkpoint_every_steps = 1;
  sopt.durable.faults = &faults;
  sopt.durable.max_retries = 1;
  sopt.durable.retry_timeout_s = 1e-4;
  StreamDriver driver(net, profile, sopt);
  EXPECT_THROW(driver.run(), dopf::runtime::IoError);
}

}  // namespace
}  // namespace dopf::stream
