/// Streaming profile parsing + per-step network materialization: the input
/// format behind `dopf_solve --stream` (see src/stream/profile.hpp).

#include "stream/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "feeders/ieee13.hpp"
#include "network/phase.hpp"
#include "runtime/scenario.hpp"

namespace dopf::stream {
namespace {

StreamProfile parse(const std::string& text) {
  std::istringstream in(text);
  return parse_profile(in);
}

void expect_profile_error(const std::string& text,
                          const std::string& fragment) {
  try {
    parse(text);
    FAIL() << "expected ProfileError for:\n" << text;
  } catch (const ProfileError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

TEST(StreamProfileParserTest, ParsesDirectivesBlocksAndComments) {
  const auto p = parse(
      "# a day\n"
      "profile day\n"
      "steps 288\n"
      "dt 300\n"
      "step 0\n"
      "  load constant scale 0.95  # valley\n"
      "step 96\n"
      "  load * scale 1.10\n"
      "  gen gen-mid cost-scale 1.2\n"
      "  switch 632-645 impedance-scale 1.5\n"
      "step 192\n"
      "  switch 632-645 open\n"
      "  switch 645-646 close\n");
  EXPECT_EQ(p.name, "day");
  EXPECT_EQ(p.num_steps, 288);
  EXPECT_DOUBLE_EQ(p.dt_seconds, 300.0);
  ASSERT_EQ(p.blocks.size(), 3u);
  EXPECT_EQ(p.blocks[0].step, 0);
  ASSERT_EQ(p.blocks[0].overrides.size(), 1u);
  EXPECT_EQ(p.blocks[0].overrides[0].kind,
            dopf::runtime::ScenarioOverride::Kind::kLoadScale);
  ASSERT_EQ(p.blocks[1].overrides.size(), 2u);
  ASSERT_EQ(p.blocks[1].switches.size(), 1u);
  EXPECT_EQ(p.blocks[1].switches[0].kind, SwitchEvent::Kind::kImpedanceScale);
  EXPECT_DOUBLE_EQ(p.blocks[1].switches[0].factor, 1.5);
  ASSERT_EQ(p.blocks[2].switches.size(), 2u);
  EXPECT_EQ(p.blocks[2].switches[0].kind, SwitchEvent::Kind::kOpen);
  EXPECT_EQ(p.blocks[2].switches[1].kind, SwitchEvent::Kind::kClose);
}

TEST(StreamProfileParserTest, BlockForImplementsPiecewiseHold) {
  const auto p = parse(
      "steps 10\n"
      "step 2\n  load constant scale 0.9\n"
      "step 5\n  load constant scale 1.1\n");
  EXPECT_EQ(p.block_for(0), nullptr);  // base network before first block
  EXPECT_EQ(p.block_for(1), nullptr);
  ASSERT_NE(p.block_for(2), nullptr);
  EXPECT_EQ(p.block_for(2)->step, 2);
  EXPECT_EQ(p.block_for(4)->step, 2);  // held
  EXPECT_EQ(p.block_for(5)->step, 5);
  EXPECT_EQ(p.block_for(9)->step, 5);  // held to the end
}

TEST(StreamProfileParserTest, RejectsMalformedInputWithLineNumbers) {
  expect_profile_error("", "missing 'steps");
  expect_profile_error("steps nope\n", "line 1");
  expect_profile_error("steps 0\n", "positive integer");
  expect_profile_error("step 0\n", "'step' before 'steps");
  expect_profile_error("steps 4\nstep 7\n", "out of range");
  expect_profile_error("steps 4\nstep 2\nstep 1\n", "not increasing");
  expect_profile_error("steps 4\nstep 2\nstep 2\n", "not increasing");
  expect_profile_error("steps 4\nload constant scale 1\n",
                       "outside a 'step' block");
  expect_profile_error("steps 4\nswitch l1 open\n", "outside a 'step' block");
  expect_profile_error("steps 4\nstep 0\nswitch l1 explode\n",
                       "unknown switch action");
  expect_profile_error("steps 4\nstep 0\nswitch l1 impedance-scale -2\n",
                       "must be positive");
  expect_profile_error("steps 4\nstep 0\nswitch l1 open 3\n", "expected:");
  expect_profile_error("steps 4\nfrobnicate\n", "unknown directive");
  expect_profile_error("steps 4\nsteps 5\n", "duplicate 'steps'");
}

TEST(StreamProfileParserTest, RejectsDuplicateTargetsWithBothLineNumbers) {
  // Duplicate load override inside one block (reuses the scenario-grammar
  // duplicate rejection, so both line numbers are named).
  try {
    parse(
        "steps 4\n"
        "step 0\n"
        "  load constant scale 0.9\n"
        "  load constant scale 1.2\n");
    FAIL() << "expected ProfileError";
  } catch (const ProfileError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate load override"), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
  // Duplicate switch event for the same line inside one block.
  try {
    parse(
        "steps 4\n"
        "step 1\n"
        "  switch l1 open\n"
        "  switch l1 impedance-scale 2\n");
    FAIL() << "expected ProfileError";
  } catch (const ProfileError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate switch event"), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
  // The same target in DIFFERENT blocks is the normal time-series case.
  EXPECT_NO_THROW(parse(
      "steps 4\n"
      "step 0\n  load constant scale 0.9\n  switch l1 open\n"
      "step 2\n  load constant scale 1.1\n  switch l1 close\n"));
}

TEST(StreamNetworkAtStepTest, AppliesOverridesAbsoluteAgainstBase) {
  const auto net = dopf::feeders::ieee13();
  const auto p = parse(
      "steps 6\n"
      "step 1\n  load constant scale 2.0\n"
      "step 3\n  load constant scale 1.5\n");

  const auto at0 = network_at_step(net, p, 0);
  const auto at2 = network_at_step(net, p, 2);   // holds step 1's block
  const auto at4 = network_at_step(net, p, 4);   // step 3's block, NOT 2*1.5
  for (std::size_t i = 0; i < net.num_loads(); ++i) {
    const auto& base = net.load(static_cast<int>(i));
    const double f = dopf::runtime::is_constant_power(base) ? 1.0 : 0.0;
    for (auto ph : {dopf::network::Phase::kA, dopf::network::Phase::kB,
                    dopf::network::Phase::kC}) {
      EXPECT_DOUBLE_EQ(at0.load(static_cast<int>(i)).p_ref[ph],
                       base.p_ref[ph]);
      EXPECT_DOUBLE_EQ(at2.load(static_cast<int>(i)).p_ref[ph],
                       base.p_ref[ph] * (f > 0 ? 2.0 : 1.0));
      EXPECT_DOUBLE_EQ(at4.load(static_cast<int>(i)).p_ref[ph],
                       base.p_ref[ph] * (f > 0 ? 1.5 : 1.0));
    }
  }
}

TEST(StreamNetworkAtStepTest, SwitchEventsEditImpedanceAndLimits) {
  const auto net = dopf::feeders::ieee13();
  int target = -1;
  for (const auto& line : net.lines()) {
    if (line.name == "632-645") target = line.id;
  }
  ASSERT_GE(target, 0);

  const auto p = parse(
      "steps 6\n"
      "step 1\n  switch 632-645 impedance-scale 2.0\n"
      "step 3\n  switch 632-645 open\n"
      "step 5\n  switch 632-645 close\n");

  const auto& base_line = net.line(target);
  const auto scaled = network_at_step(net, p, 1);
  const auto opened = network_at_step(net, p, 4);  // holds step 3's block
  const auto closed = network_at_step(net, p, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(scaled.line(target).r(i, j), base_line.r(i, j) * 2.0);
      EXPECT_DOUBLE_EQ(scaled.line(target).x(i, j), base_line.x(i, j) * 2.0);
      EXPECT_DOUBLE_EQ(opened.line(target).r(i, j),
                       base_line.r(i, j) * kOpenImpedanceScale);
      // close = back to base (blocks are absolute, not compounding).
      EXPECT_DOUBLE_EQ(closed.line(target).r(i, j), base_line.r(i, j));
      EXPECT_DOUBLE_EQ(closed.line(target).x(i, j), base_line.x(i, j));
    }
  }
  for (auto ph : {dopf::network::Phase::kA, dopf::network::Phase::kB,
                  dopf::network::Phase::kC}) {
    EXPECT_DOUBLE_EQ(opened.line(target).flow_limit[ph], kOpenFlowLimit);
    EXPECT_DOUBLE_EQ(scaled.line(target).flow_limit[ph],
                     base_line.flow_limit[ph]);  // re-rate keeps limits
    EXPECT_DOUBLE_EQ(closed.line(target).flow_limit[ph],
                     base_line.flow_limit[ph]);
  }
}

TEST(StreamNetworkAtStepTest, UnknownTargetsCarryStepProvenance) {
  const auto net = dopf::feeders::ieee13();
  const auto p_line = parse("steps 4\nstep 2\n  switch no-such-line open\n");
  const auto p_load =
      parse("steps 4\nstep 1\n  load no-such-load scale 1.1\n");
  try {
    network_at_step(net, p_line, 3);
    FAIL() << "expected ProfileError";
  } catch (const ProfileError& e) {
    EXPECT_NE(std::string(e.what()).find("step 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("no-such-line"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(network_at_step(net, p_load, 2), ProfileError);
  EXPECT_THROW(network_at_step(net, p_line, 7), ProfileError);   // range
  EXPECT_THROW(network_at_step(net, p_line, -1), ProfileError);  // range
}

}  // namespace
}  // namespace dopf::stream
