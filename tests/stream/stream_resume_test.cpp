/// Mid-stream checkpoint/resume: interrupt a stream at step K, resume from
/// the saved checkpoint, and the remaining steps must replay
/// byte-identically (per-step record lines compared as strings — hex-float
/// objectives, residuals, and model/scenario fingerprints included). The
/// checkpoint's fingerprints (PR 6 model/scenario fingerprinting) must
/// reject resumption against a different profile.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "feeders/ieee13.hpp"
#include "stream/driver.hpp"
#include "stream/profile.hpp"

namespace dopf::stream {
namespace {

StreamProfile parse(const std::string& text) {
  std::istringstream in(text);
  return parse_profile(in);
}

const char* const kProfileText =
    "profile resume\n"
    "steps 8\n"
    "step 0\n  load constant scale 0.95\n"
    "step 2\n  load constant scale 1.06\n"
    "step 4\n  load constant scale 1.01\n"
    "  switch 632-645 impedance-scale 1.6\n"
    "step 6\n  load constant scale 0.98\n"
    "  switch 632-645 impedance-scale 1.6\n";

StreamOptions base_options() {
  StreamOptions sopt;
  sopt.admm.eps_rel = 1e-2;
  sopt.admm.check_every = 10;
  sopt.preflight = "off";
  return sopt;
}

std::vector<std::string> step_lines(const StreamResult& result) {
  std::vector<std::string> lines;
  for (const auto& rec : result.steps) lines.push_back(record_line(rec));
  return lines;
}

TEST(StreamResumeTest, ResumedTailReplaysByteIdentically) {
  const auto net = dopf::feeders::ieee13();
  const auto profile = parse(kProfileText);
  const std::string ckpt = ::testing::TempDir() + "/stream_resume.ckpt";
  constexpr int kAt = 3;

  // Uninterrupted run, checkpointing after step 3 (mid held-block, before
  // the switch at 4 — the resumed run must still pay the refactorization).
  StreamOptions full_opt = base_options();
  full_opt.checkpoint_at_step = kAt;
  full_opt.checkpoint_path = ckpt;
  StreamDriver full(net, profile, full_opt);
  const StreamResult full_result = full.run();
  ASSERT_TRUE(full_result.all_converged);
  ASSERT_EQ(full_result.steps.size(), 8u);

  // Resume: fast-forward to step 3's scenario, restore the iterate state,
  // replay steps 4..7.
  StreamOptions tail_opt = base_options();
  tail_opt.resume_path = ckpt;
  StreamDriver tail(net, profile, tail_opt);
  const StreamResult tail_result = tail.run();
  EXPECT_EQ(tail_result.first_step, kAt + 1);
  ASSERT_EQ(tail_result.steps.size(), 8u - (kAt + 1));
  EXPECT_TRUE(tail_result.all_converged);

  // Byte-identical tail: every shared step's serialized record matches.
  const auto full_lines = step_lines(full_result);
  const auto tail_lines = step_lines(tail_result);
  for (std::size_t i = 0; i < tail_lines.size(); ++i) {
    EXPECT_EQ(tail_lines[i], full_lines[kAt + 1 + i]) << "tail step " << i;
  }

  // The resumed run still pays exactly the switch refactorization (step 4)
  // and nothing else; its first solve continues warm, not cold.
  EXPECT_EQ(tail_result.refactorizations, 1);
  EXPECT_EQ(tail_result.session.cold_solves, 0);
  EXPECT_EQ(tail_result.session.warm_solves,
            static_cast<int>(tail_result.steps.size()));
}

TEST(StreamResumeTest, CheckpointFromDifferentProfileIsRejected) {
  const auto net = dopf::feeders::ieee13();
  const auto profile = parse(kProfileText);
  const std::string ckpt = ::testing::TempDir() + "/stream_mismatch.ckpt";

  StreamOptions full_opt = base_options();
  full_opt.checkpoint_at_step = 3;
  full_opt.checkpoint_path = ckpt;
  StreamDriver full(net, profile, full_opt);
  ASSERT_TRUE(full.run().all_converged);

  // A profile whose step-3 scenario differs: the checkpoint's scenario
  // fingerprint no longer matches the fast-forwarded binding.
  auto other = parse(kProfileText);
  other.blocks[1].overrides[0].factor = 1.07;  // step-2 block, held at 3
  StreamOptions tail_opt = base_options();
  tail_opt.resume_path = ckpt;
  StreamDriver tail(net, other, tail_opt);
  EXPECT_THROW(tail.run(), StreamError);
}

TEST(StreamResumeTest, BadResumeConfigurationsAreTypedErrors) {
  const auto net = dopf::feeders::ieee13();
  const auto profile = parse(kProfileText);

  // checkpoint step without a path, and out-of-range checkpoint step.
  StreamOptions no_path = base_options();
  no_path.checkpoint_at_step = 2;
  EXPECT_THROW(StreamDriver(net, profile, no_path), StreamError);
  StreamOptions out_of_range = base_options();
  out_of_range.checkpoint_at_step = 99;
  out_of_range.checkpoint_path = "x.ckpt";
  EXPECT_THROW(StreamDriver(net, profile, out_of_range), StreamError);

  // Resume from a missing file surfaces as a typed error, not a crash.
  StreamOptions missing = base_options();
  missing.resume_path = "/nonexistent/stream.ckpt";
  StreamDriver driver(net, profile, missing);
  EXPECT_THROW(driver.run(), std::exception);
}

}  // namespace
}  // namespace dopf::stream
