/// Streaming warm-start property battery (tier1): a seeded 24-step ieee13
/// stream driven through ONE SolveSession. Every warm step must match an
/// independent cold solve of the same step's problem within the
/// `dopf_verify --reference` tolerance, the session's refactorization
/// counter must equal EXACTLY the number of A-touched components, and
/// sampled steps must clear the full invariant/KKT battery from src/verify
/// (local feasibility, box, consensus, centralized-model residual,
/// stationarity against the interior-point reference).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/admm.hpp"
#include "core/scenario_binding.hpp"
#include "core/solve_model.hpp"
#include "core/solve_session.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "solver/reference.hpp"
#include "stream/driver.hpp"
#include "stream/profile.hpp"
#include "verify/invariants.hpp"

namespace dopf::stream {
namespace {

constexpr int kSteps = 24;
constexpr int kSwitchStep = 12;  // impedance re-rate, held to the end
constexpr unsigned kSeed = 20260808u;

/// Deterministic LCG load factors in [0.90, 1.10] — the "seeded" part of
/// the property battery; no wall-clock or global RNG state.
double seeded_factor(int block) {
  unsigned s = kSeed;
  for (int i = 0; i <= block; ++i) s = s * 1664525u + 1013904223u;
  return 0.90 + 0.20 * ((s >> 8) % 1000) / 999.0;
}

/// A block every 2 steps; the switch event appears at kSwitchStep and in
/// every LATER block (blocks are absolute against base, so dropping it
/// would revert the line and cost a second refactorization).
StreamProfile seeded_profile() {
  std::ostringstream out;
  out << "profile seeded\nsteps " << kSteps << "\n";
  for (int b = 0; 2 * b < kSteps; ++b) {
    char factor[32];
    std::snprintf(factor, sizeof(factor), "%.4f", seeded_factor(b));
    out << "step " << 2 * b << "\n  load constant scale " << factor << "\n";
    if (2 * b >= kSwitchStep) {
      out << "  switch 632-645 impedance-scale 1.8\n";
    }
  }
  std::istringstream in(out.str());
  return parse_profile(in);
}

struct StepOutcome {
  dopf::core::AdmmResult warm;
  dopf::core::AdmmResult cold;
  dopf::core::RebindStats rebind;
  std::vector<double> warm_z;  // solver z at the warm solution
};

/// Drive the stream manually through the session layers (mirroring
/// StreamDriver, but keeping solver state accessible for the battery).
class StreamEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new dopf::network::Network(dopf::feeders::ieee13());
    profile_ = new StreamProfile(seeded_profile());
    opt_.eps_rel = 1e-2;
    opt_.check_every = 10;

    const auto base_problem = dopf::opf::decompose(
        *net_, dopf::opf::build_model(*net_));
    model_ = new dopf::core::SolveModel(base_problem, opt_.projector);
    binding_ = new dopf::core::ScenarioBinding(*model_);
    session_ = new dopf::core::SolveSession(*binding_, opt_);
    outcomes_ = new std::vector<StepOutcome>();

    for (int k = 0; k < kSteps; ++k) {
      const auto net_k = network_at_step(*net_, *profile_, k);
      const auto problem_k = dopf::opf::decompose(net_k);

      StepOutcome out;
      out.rebind = session_->rebind(problem_k);
      out.warm = session_->solve();
      const auto z = session_->solver().z();
      out.warm_z.assign(z.begin(), z.end());

      // Independent cold solve: fresh model, binding, and session built
      // from scratch for this step's problem — shares nothing with the
      // streaming session.
      dopf::core::SolveModel cold_model(problem_k, opt_.projector);
      dopf::core::ScenarioBinding cold_binding(cold_model);
      dopf::core::SolveSession cold_session(cold_binding, opt_);
      out.cold = cold_session.solve();
      outcomes_->push_back(std::move(out));
    }
  }

  static void TearDownTestSuite() {
    delete outcomes_;
    delete session_;
    delete binding_;
    delete model_;
    delete profile_;
    delete net_;
    outcomes_ = nullptr;
    session_ = nullptr;
    binding_ = nullptr;
    model_ = nullptr;
    profile_ = nullptr;
    net_ = nullptr;
  }

  static dopf::network::Network* net_;
  static StreamProfile* profile_;
  static dopf::core::AdmmOptions opt_;
  static dopf::core::SolveModel* model_;
  static dopf::core::ScenarioBinding* binding_;
  static dopf::core::SolveSession* session_;
  static std::vector<StepOutcome>* outcomes_;
};

dopf::network::Network* StreamEquivalence::net_ = nullptr;
StreamProfile* StreamEquivalence::profile_ = nullptr;
dopf::core::AdmmOptions StreamEquivalence::opt_;
dopf::core::SolveModel* StreamEquivalence::model_ = nullptr;
dopf::core::ScenarioBinding* StreamEquivalence::binding_ = nullptr;
dopf::core::SolveSession* StreamEquivalence::session_ = nullptr;
std::vector<StepOutcome>* StreamEquivalence::outcomes_ = nullptr;

TEST_F(StreamEquivalence, EveryWarmStepMatchesIndependentColdSolve) {
  ASSERT_EQ(outcomes_->size(), static_cast<std::size_t>(kSteps));
  const double tol = 5e-2;  // the dopf_verify --reference tolerance
  for (int k = 0; k < kSteps; ++k) {
    const StepOutcome& out = (*outcomes_)[k];
    ASSERT_TRUE(out.warm.converged) << "step " << k;
    ASSERT_TRUE(out.cold.converged) << "step " << k;
    EXPECT_EQ(out.warm.warm_started, k > 0) << "step " << k;
    EXPECT_FALSE(out.cold.warm_started) << "step " << k;
    EXPECT_NEAR(out.warm.objective, out.cold.objective,
                tol * (1.0 + std::abs(out.cold.objective)))
        << "step " << k;
    ASSERT_EQ(out.warm.x.size(), out.cold.x.size());
    for (std::size_t i = 0; i < out.warm.x.size(); ++i) {
      EXPECT_NEAR(out.warm.x[i], out.cold.x[i], tol)
          << "step " << k << " x[" << i << "]";
    }
  }
}

TEST_F(StreamEquivalence, RefactorizationsExactlyMatchATouchedComponents) {
  // One switch event introduced at kSwitchStep and held: the impedance
  // re-rate touches exactly one component's A_s exactly once across the
  // whole stream. Everything else is load-only (rhs at block boundaries,
  // unchanged inside a held block).
  int a_touched = 0;
  for (int k = 0; k < kSteps; ++k) {
    const auto& rebind = (*outcomes_)[k].rebind;
    a_touched += rebind.refactorizations;
    if (k == kSwitchStep) {
      EXPECT_EQ(rebind.refactorizations, 1) << "switch step";
    } else {
      EXPECT_EQ(rebind.refactorizations, 0) << "step " << k;
    }
    if (k % 2 == 1) {  // inside a held block: nothing changed at all
      EXPECT_EQ(rebind.rhs_rebinds, 0) << "step " << k;
    }
  }
  EXPECT_EQ(a_touched, 1);
  EXPECT_EQ(session_->stats().refactorizations, a_touched);
  EXPECT_EQ(model_->refactorizations(), a_touched);
  EXPECT_EQ(session_->stats().solves, kSteps);
  EXPECT_EQ(session_->stats().cold_solves, 1);
  EXPECT_EQ(session_->stats().warm_solves, kSteps - 1);
}

TEST_F(StreamEquivalence, SampledStepsClearInvariantAndKktBattery) {
  // Full battery on a sample: first step, a mid-block held step, the
  // switch step, and the last step.
  const dopf::verify::InvariantOptions vopt;
  for (int k : {0, 7, kSwitchStep, kSteps - 1}) {
    const StepOutcome& out = (*outcomes_)[k];
    const auto net_k = network_at_step(*net_, *profile_, k);
    const auto model_k = dopf::opf::build_model(net_k);
    const auto problem_k = dopf::opf::decompose(net_k, model_k);

    auto report =
        dopf::verify::check_invariants(problem_k, out.warm.x, out.warm_z);
    dopf::verify::add_model_check(model_k, out.warm.x, &report);
    const auto reference = dopf::solver::reference_solve(model_k);
    ASSERT_EQ(reference.status, dopf::solver::LpStatus::kOptimal)
        << "step " << k;
    dopf::verify::add_reference_check(model_k, out.warm.x, reference,
                                      &report);
    EXPECT_TRUE(report.ok(vopt))
        << "step " << k << ":\n" << report.to_string();
  }
}

TEST_F(StreamEquivalence, StreamDriverReproducesTheManualLoop) {
  // The StreamDriver must take the exact same trajectory as the manual
  // session loop above: same per-step iteration counts, bitwise-equal
  // objectives, same refactorization accounting.
  StreamOptions sopt;
  sopt.admm = opt_;
  sopt.preflight = "off";
  StreamDriver driver(*net_, *profile_, sopt);
  const StreamResult result = driver.run();

  ASSERT_EQ(result.steps.size(), static_cast<std::size_t>(kSteps));
  for (int k = 0; k < kSteps; ++k) {
    const auto& rec = result.steps[k];
    const auto& out = (*outcomes_)[k];
    EXPECT_EQ(rec.iterations, out.warm.iterations) << "step " << k;
    EXPECT_EQ(rec.objective, out.warm.objective) << "step " << k;
    EXPECT_EQ(rec.rebind.refactorizations, out.rebind.refactorizations);
    EXPECT_EQ(rec.switched, k == kSwitchStep);
  }
  EXPECT_EQ(result.refactorizations, 1);
  EXPECT_TRUE(result.all_converged);
}

}  // namespace
}  // namespace dopf::stream
