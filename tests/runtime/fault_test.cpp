/// Fault-plan parsing, injector semantics, retry pricing, and the
/// fault-aware VirtualCluster overload.

#include "runtime/fault.hpp"

#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "runtime/partition.hpp"

namespace dopf::runtime {
namespace {

TEST(FaultPlanTest, ParsesEveryKind) {
  const FaultPlan plan = FaultPlan::parse(
      "kill:device=1,iter=137; drop:device=2,iter=10,count=2;"
      "corrupt:device=0,iter=5,scale=32;"
      "straggle:device=3,iter=7,until=20,factor=8");
  ASSERT_EQ(plan.events.size(), 4u);
  EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::kKillDevice);
  EXPECT_EQ(plan.events[0].device, 1u);
  EXPECT_EQ(plan.events[0].iteration, 137);
  EXPECT_EQ(plan.events[1].kind, FaultEvent::Kind::kDropMessage);
  EXPECT_EQ(plan.events[1].count, 2);
  EXPECT_EQ(plan.events[2].kind, FaultEvent::Kind::kCorruptMessage);
  EXPECT_EQ(plan.events[2].factor, 32.0);
  EXPECT_EQ(plan.events[3].kind, FaultEvent::Kind::kStraggle);
  EXPECT_EQ(plan.events[3].until, 20);
  EXPECT_EQ(plan.events[3].factor, 8.0);
}

TEST(FaultPlanTest, DefaultsApplied) {
  const FaultPlan plan =
      FaultPlan::parse("corrupt:device=1,iter=3;straggle:device=0,iter=9");
  EXPECT_EQ(plan.events[0].factor, 16.0);  // default corruption scale
  EXPECT_EQ(plan.events[1].factor, 4.0);   // default slowdown
  EXPECT_EQ(plan.events[1].until, 9);      // until defaults to iter
}

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ; ;  ").empty());
}

TEST(FaultPlanTest, RoundTripsThroughToString) {
  const std::string spec =
      "kill:device=1,iter=137;drop:device=2,iter=10,count=2;"
      "corrupt:device=0,iter=5,scale=32;"
      "straggle:device=3,iter=7,until=20,factor=8";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan replayed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(plan.to_string(), replayed.to_string());
  ASSERT_EQ(plan.events.size(), replayed.events.size());
}

TEST(FaultPlanTest, MalformedSpecsThrowWithContext) {
  EXPECT_THROW(FaultPlan::parse("explode:device=0,iter=1"), FaultError);
  EXPECT_THROW(FaultPlan::parse("kill device=0"), FaultError);
  EXPECT_THROW(FaultPlan::parse("kill:device=0"), FaultError);  // no iter
  EXPECT_THROW(FaultPlan::parse("kill:iter=5"), FaultError);    // no device
  EXPECT_THROW(FaultPlan::parse("kill:device=0,iter=abc"), FaultError);
  EXPECT_THROW(FaultPlan::parse("kill:device=0,iter=0"), FaultError);
  EXPECT_THROW(FaultPlan::parse("kill:device=-1,iter=5"), FaultError);
  EXPECT_THROW(FaultPlan::parse("kill:device=0,iter=5,bogus=1"), FaultError);
  EXPECT_THROW(FaultPlan::parse("drop:device=0,iter=5,count=0"), FaultError);
  try {
    FaultPlan::parse("kill:device=0,iter=1x");
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("1x"), std::string::npos)
        << "diagnostic should quote the offending token: " << e.what();
  }
}

TEST(FaultInjectorTest, KillIsConsumedOnce) {
  FaultInjector inj(FaultPlan::parse("kill:device=1,iter=7"));
  EXPECT_FALSE(inj.kill_scheduled(1, 6));
  EXPECT_FALSE(inj.kill_scheduled(0, 7));
  EXPECT_TRUE(inj.kill_scheduled(1, 7));
  inj.consume_kill(1, 7);
  // A post-failover replay of the same iteration sees a clean device.
  EXPECT_FALSE(inj.kill_scheduled(1, 7));
}

TEST(FaultInjectorTest, DropsAccumulateAndConsume) {
  // Two drop events covering the same iteration (one as a persistent
  // window) accumulate; consuming clears the one-shot but never the
  // persistent one.
  FaultInjector inj(FaultPlan::parse(
      "drop:device=2,iter=4,count=2;drop:device=2,from=3,until=4"));
  EXPECT_EQ(inj.message_drops(2, 4), 3);
  EXPECT_EQ(inj.message_drops(2, 5), 0);
  inj.consume_drops(2, 4);
  EXPECT_EQ(inj.message_drops(2, 4), 1);  // persistent event survives
}

TEST(FaultPlanTest, DuplicateEntriesRejectedWithEntryNumbers) {
  try {
    FaultPlan::parse(
        "drop:device=2,iter=4,count=2;kill:device=0,iter=9;"
        "drop:device=2,iter=4");
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("entry 3"), std::string::npos) << what;
    EXPECT_NE(what.find("entry 1"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicates"), std::string::npos) << what;
  }
  // Same (kind, iteration) on a different device is NOT a duplicate.
  EXPECT_NO_THROW(
      FaultPlan::parse("drop:device=1,iter=4;drop:device=2,iter=4"));
  // Same (device, iteration) with a different kind is NOT a duplicate.
  EXPECT_NO_THROW(
      FaultPlan::parse("drop:device=2,iter=4;corrupt:device=2,iter=4"));
}

TEST(FaultPlanTest, PersistentSpecsParse) {
  const FaultPlan plan = FaultPlan::parse(
      "straggle:device=1,from=30,factor=8;drop:device=2,from=200,until=250");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_TRUE(plan.events[0].persistent);
  EXPECT_EQ(plan.events[0].iteration, 30);
  EXPECT_TRUE(plan.events[0].active_at(30));
  EXPECT_TRUE(plan.events[0].active_at(100000));  // open-ended
  EXPECT_FALSE(plan.events[0].active_at(29));
  EXPECT_TRUE(plan.events[1].persistent);
  EXPECT_TRUE(plan.events[1].active_at(250));
  EXPECT_FALSE(plan.events[1].active_at(251));
  EXPECT_TRUE(plan.has_persistent());
  EXPECT_FALSE(FaultPlan::parse("drop:device=2,iter=4").has_persistent());

  // Persistent specs survive a to_string round trip.
  const FaultPlan replayed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(plan.to_string(), replayed.to_string());
  EXPECT_TRUE(replayed.events[0].persistent);

  // iter= and from= are mutually exclusive; kills cannot recur.
  EXPECT_THROW(FaultPlan::parse("drop:device=2,iter=4,from=4"), FaultError);
  EXPECT_THROW(FaultPlan::parse("kill:device=2,from=4"), FaultError);
}

TEST(FaultInjectorTest, PersistentEventsAreNeverConsumed) {
  FaultInjector inj(FaultPlan::parse(
      "drop:device=1,from=10;corrupt:device=0,from=5,scale=4"));
  for (int t : {10, 11, 500}) {
    EXPECT_EQ(inj.message_drops(1, t), 1) << "iteration " << t;
    inj.consume_drops(1, t);
    EXPECT_EQ(inj.message_drops(1, t), 1) << "consume must not clear";
  }
  ASSERT_NE(inj.corruption(0, 7), nullptr);
  inj.consume_corruption(0, 7);
  EXPECT_NE(inj.corruption(0, 7), nullptr);
  EXPECT_EQ(inj.corruption(0, 4), nullptr);  // before the window
}

TEST(FaultInjectorTest, CorruptionConsumed) {
  FaultInjector inj(FaultPlan::parse("corrupt:device=0,iter=9,scale=64"));
  ASSERT_NE(inj.corruption(0, 9), nullptr);
  EXPECT_EQ(inj.corruption(0, 9)->factor, 64.0);
  EXPECT_EQ(inj.corruption(0, 8), nullptr);
  inj.consume_corruption(0, 9);
  EXPECT_EQ(inj.corruption(0, 9), nullptr);
}

TEST(FaultInjectorTest, StraggleWindowMultiplies) {
  FaultInjector inj(FaultPlan::parse(
      "straggle:device=1,iter=5,until=10,factor=3;"
      "straggle:device=1,iter=8,until=12,factor=2"));
  EXPECT_EQ(inj.straggle_factor(1, 4), 1.0);
  EXPECT_EQ(inj.straggle_factor(1, 5), 3.0);
  EXPECT_EQ(inj.straggle_factor(1, 8), 6.0);  // overlapping windows compound
  EXPECT_EQ(inj.straggle_factor(1, 11), 2.0);
  EXPECT_EQ(inj.straggle_factor(1, 13), 1.0);
  EXPECT_EQ(inj.straggle_factor(0, 8), 1.0);  // other devices unaffected
}

TEST(RetryCostTest, BackoffSeriesPlusResends) {
  RecoveryPolicy policy;
  policy.retry_timeout_s = 1e-4;
  policy.backoff_factor = 2.0;
  CommModel comm;
  const std::size_t bytes = 4096;
  // 3 failures: timeouts 1e-4 + 2e-4 + 4e-4, plus three re-sends.
  const double expect =
      7e-4 + 3.0 * comm.message_seconds(bytes);
  EXPECT_NEAR(retry_cost_seconds(policy, comm, bytes, 3), expect, 1e-12);
  EXPECT_EQ(retry_cost_seconds(policy, comm, bytes, 0), 0.0);
}

class FaultClusterTest : public ::testing::Test {
 protected:
  // 6 equal components over 3 ranks: 2 per rank.
  std::vector<double> seconds_ = std::vector<double>(6, 1e-3);
  std::vector<std::size_t> payload_ = std::vector<std::size_t>(6, 10);
  Partition partition_ = block_partition(6, 3);
  VirtualCluster cluster_{3, CommModel{}};
  RecoveryPolicy recovery_;
};

TEST_F(FaultClusterTest, NoFaultsMatchesBaseline) {
  const FaultInjector none;
  const auto base = cluster_.price_local_update(partition_, seconds_, payload_);
  const auto faulted = cluster_.price_local_update(
      partition_, seconds_, payload_, none, 1, recovery_);
  EXPECT_EQ(faulted.compute_seconds, base.compute_seconds);
  EXPECT_EQ(faulted.communication_seconds, base.communication_seconds);
}

TEST_F(FaultClusterTest, StraggleStretchesMakespanOnly) {
  const FaultInjector inj(
      FaultPlan::parse("straggle:device=1,iter=5,factor=4"));
  const auto base = cluster_.price_local_update(partition_, seconds_, payload_);
  const auto in_window = cluster_.price_local_update(
      partition_, seconds_, payload_, inj, 5, recovery_);
  const auto outside = cluster_.price_local_update(
      partition_, seconds_, payload_, inj, 6, recovery_);
  EXPECT_NEAR(in_window.compute_seconds, 4.0 * base.compute_seconds, 1e-15);
  EXPECT_EQ(in_window.communication_seconds, base.communication_seconds);
  EXPECT_EQ(outside.compute_seconds, base.compute_seconds);
}

TEST_F(FaultClusterTest, DropsPriceRetries) {
  const FaultInjector inj(FaultPlan::parse("drop:device=2,iter=3,count=2"));
  const auto base = cluster_.price_local_update(partition_, seconds_, payload_);
  const auto faulted = cluster_.price_local_update(
      partition_, seconds_, payload_, inj, 3, recovery_);
  const std::size_t up_bytes = 2 * 20 * sizeof(double);  // rank 2: 2 comps
  EXPECT_NEAR(faulted.communication_seconds - base.communication_seconds,
              retry_cost_seconds(recovery_, CommModel{}, up_bytes, 2), 1e-15);
}

TEST_F(FaultClusterTest, DropsBeyondRetryBudgetThrow) {
  recovery_.max_retries = 2;
  const FaultInjector inj(FaultPlan::parse("drop:device=0,iter=3,count=3"));
  EXPECT_THROW(cluster_.price_local_update(partition_, seconds_, payload_,
                                           inj, 3, recovery_),
               FaultError);
}

TEST_F(FaultClusterTest, DetectedCorruptionPricesOneResend) {
  const FaultInjector inj(FaultPlan::parse("corrupt:device=1,iter=3"));
  const auto base = cluster_.price_local_update(partition_, seconds_, payload_);
  const auto verified = cluster_.price_local_update(
      partition_, seconds_, payload_, inj, 3, recovery_);
  EXPECT_GT(verified.communication_seconds, base.communication_seconds);

  recovery_.verify_messages = false;
  const auto unverified = cluster_.price_local_update(
      partition_, seconds_, payload_, inj, 3, recovery_);
  // Undetected corruption costs nothing — that is exactly the danger.
  EXPECT_EQ(unverified.communication_seconds, base.communication_seconds);
}

}  // namespace
}  // namespace dopf::runtime
