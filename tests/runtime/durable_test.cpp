/// Durable-write layer: atomic replace semantics, deterministic filesystem
/// failpoints, bounded retry/backoff pricing, and the generation-numbered
/// A/B checkpoint store with torn-write fallback.

#include "runtime/durable.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "runtime/checkpoint.hpp"

namespace dopf::runtime {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// TempDir() is shared across test runs; a CheckpointStore adopts any slot
/// files it finds there (by design), so store tests must start from a
/// clean base.
std::string fresh_base(const std::string& name) {
  const std::string base = temp_path(name);
  for (const char* suffix : {"", ".a", ".b", ".tmp", ".a.tmp", ".b.tmp"}) {
    std::remove((base + suffix).c_str());
  }
  return base;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool exists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST(DurableWriteTest, WritesAndReplacesAtomically) {
  const std::string path = temp_path("durable_basic.txt");
  const IoStats first = durable_write_file(path, "generation one\n");
  EXPECT_EQ(first.writes, 1);
  EXPECT_EQ(first.retries, 0);
  EXPECT_EQ(slurp(path), "generation one\n");
  durable_write_file(path, "generation two\n");
  EXPECT_EQ(slurp(path), "generation two\n");
  EXPECT_FALSE(exists(path + ".tmp")) << "temp file must not survive success";
}

TEST(DurableWriteTest, MissingDirectoryRaisesIoErrorWithPathAndErrno) {
  const std::string path = temp_path("no_such_dir") + "/x.txt";
  try {
    durable_write_file(path, "content");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(e.error_code(), 0);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(DurableWriteTest, TransientEnospcIsRetriedAndPriced) {
  FsFaultInjector faults(FsFaultPlan::parse("enospc:op=1,times=2"));
  DurableOptions opts;
  opts.faults = &faults;
  opts.retry_timeout_s = 1e-3;
  opts.backoff_factor = 2.0;
  const std::string path = temp_path("durable_transient.txt");
  const IoStats stats = durable_write_file(path, "survived\n", opts);
  EXPECT_EQ(stats.writes, 1);
  EXPECT_EQ(stats.retries, 2);
  // Two failed attempts: 1ms + 2ms of simulated backoff.
  EXPECT_DOUBLE_EQ(stats.retry_seconds, 3e-3);
  EXPECT_EQ(slurp(path), "survived\n");
}

TEST(DurableWriteTest, ExhaustedRetriesRaiseIoError) {
  FsFaultInjector faults(FsFaultPlan::parse("enospc:op=1,times=99"));
  DurableOptions opts;
  opts.faults = &faults;
  opts.max_retries = 2;
  const std::string path = temp_path("durable_exhausted.txt");
  durable_write_file(path, "old contents\n");
  try {
    durable_write_file(path, "new contents\n", opts);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.error_code(), ENOSPC);
  }
  EXPECT_EQ(slurp(path), "old contents\n") << "target must stay untouched";
}

TEST(DurableWriteTest, ShortWriteNeverLeavesTornTarget) {
  FsFaultInjector faults(FsFaultPlan::parse("short:op=1,times=99,bytes=4"));
  DurableOptions opts;
  opts.faults = &faults;
  opts.max_retries = 1;
  const std::string path = temp_path("durable_short.txt");
  durable_write_file(path, "intact old file\n");
  EXPECT_THROW(durable_write_file(path, "a much longer new payload\n", opts),
               IoError);
  EXPECT_EQ(slurp(path), "intact old file\n");
  EXPECT_FALSE(exists(path + ".tmp"));
}

TEST(DurableWriteTest, RenameFailureKeepsOldFile) {
  FsFaultInjector faults(FsFaultPlan::parse("rename:op=1,times=99"));
  DurableOptions opts;
  opts.faults = &faults;
  opts.max_retries = 1;
  const std::string path = temp_path("durable_rename.txt");
  durable_write_file(path, "old\n");
  EXPECT_THROW(durable_write_file(path, "new\n", opts), IoError);
  EXPECT_EQ(slurp(path), "old\n");
}

TEST(DurableWriteTest, CrashAfterTempLeavesTempAndOldTarget) {
  FsFaultInjector faults(FsFaultPlan::parse("crash:op=2"));
  DurableOptions opts;
  opts.faults = &faults;
  const std::string path = temp_path("durable_crash.txt");
  durable_write_file(path, "gen1\n", opts);  // op 1: clean
  EXPECT_THROW(durable_write_file(path, "gen2\n", opts), SimulatedCrash);
  EXPECT_EQ(slurp(path), "gen1\n") << "rename never happened";
  EXPECT_EQ(slurp(path + ".tmp"), "gen2\n")
      << "a crashed process cleans nothing up";
}

TEST(DurableReadTest, CorruptReadFlipsOneByte) {
  const std::string path = temp_path("durable_corrupt_read.txt");
  durable_write_file(path, "payload payload payload\n");
  FsFaultInjector faults(FsFaultPlan::parse("corrupt-read:op=1"));
  DurableOptions opts;
  opts.faults = &faults;
  const std::string clean = durable_read_file(path);
  const std::string dirty = durable_read_file(path, opts);
  EXPECT_NE(clean, dirty);
  EXPECT_EQ(clean.size(), dirty.size());
  const std::string again = durable_read_file(path, opts);
  EXPECT_EQ(clean, again) << "op=1 fires on the first read only";
}

TEST(DurableReadTest, MissingFileRaisesIoError) {
  EXPECT_THROW(durable_read_file(temp_path("nonexistent.bin")), IoError);
}

TEST(FsFaultPlanTest, ParsesRoundTrippableSpecs) {
  const auto plan = FsFaultPlan::parse(
      "enospc:op=3,times=2,path=day.ckpt; short:op=5,bytes=64; crash:op=7");
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FsFailpoint::Kind::kNoSpace);
  EXPECT_EQ(plan.events[0].op, 3);
  EXPECT_EQ(plan.events[0].times, 2);
  EXPECT_EQ(plan.events[0].path_contains, "day.ckpt");
  EXPECT_EQ(plan.events[1].bytes, 64u);
  EXPECT_EQ(plan.to_string(),
            "enospc:op=3,times=2,path=day.ckpt;short:op=5,bytes=64;crash:op=7");
}

TEST(FsFaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FsFaultPlan::parse("bogus:op=1"), FaultError);
  EXPECT_THROW(FsFaultPlan::parse("enospc:times=2"), FaultError);  // no op
  EXPECT_THROW(FsFaultPlan::parse("enospc:op=0"), FaultError);
  EXPECT_THROW(FsFaultPlan::parse("enospc:op=x"), FaultError);
  EXPECT_THROW(FsFaultPlan::parse("crash:op=1,times=3"), FaultError);
  EXPECT_THROW(FsFaultPlan::parse("enospc:op=1;enospc:op=1"), FaultError);
}

TEST(FsFaultInjectorTest, PathFilterCountsMatchingOpsOnly) {
  FsFaultInjector inj(FsFaultPlan::parse("enospc:op=2,path=target"));
  EXPECT_EQ(inj.on_write_attempt("other/file"), nullptr);
  EXPECT_EQ(inj.on_write_attempt("dir/target.ckpt"), nullptr);  // op 1
  EXPECT_EQ(inj.on_write_attempt("other/file"), nullptr);
  EXPECT_NE(inj.on_write_attempt("dir/target.ckpt"), nullptr);  // op 2 fires
  EXPECT_EQ(inj.on_write_attempt("dir/target.ckpt"), nullptr);  // op 3 clean
}

AdmmCheckpoint small_checkpoint(int iteration) {
  AdmmCheckpoint ck;
  ck.label = "store-test";
  ck.iteration = iteration;
  ck.rho = 50.0;
  ck.x = {1.0, 2.0};
  ck.z = {3.0};
  ck.z_prev = {4.0};
  ck.lambda = {5.0};
  return ck;
}

TEST(CheckpointStoreTest, AlternatesSlotsWithIncreasingGenerations) {
  const std::string base = fresh_base("store_alt.ckpt");
  CheckpointStore store(base);
  store.save(small_checkpoint(10));
  store.save(small_checkpoint(20));
  store.save(small_checkpoint(30));
  const auto loaded = store.load();
  EXPECT_EQ(loaded.checkpoint.iteration, 30);
  EXPECT_EQ(loaded.checkpoint.generation, 3u);
  EXPECT_FALSE(loaded.fell_back);
  // Three saves: a(1), b(2), a(3) — slot b still holds generation 2.
  EXPECT_EQ(load_checkpoint(store.slot_b()).generation, 2u);
}

TEST(CheckpointStoreTest, TornNewestFallsBackWithDiagnostic) {
  const std::string base = fresh_base("store_torn.ckpt");
  CheckpointStore store(base);
  store.save(small_checkpoint(10));  // .a, generation 1
  store.save(small_checkpoint(20));  // .b, generation 2
  // Tear the newest slot the way a crashed write would.
  std::ofstream(store.slot_b(), std::ios::binary | std::ios::trunc)
      << "dopf-checkpoint v1\nlabel torn\n";
  const auto loaded = store.load();
  EXPECT_TRUE(loaded.fell_back);
  EXPECT_EQ(loaded.checkpoint.iteration, 10);
  EXPECT_EQ(loaded.path, store.slot_a());
  EXPECT_NE(loaded.diagnostic.find(store.slot_b()), std::string::npos)
      << "diagnostic must name the rejected slot: " << loaded.diagnostic;
}

TEST(CheckpointStoreTest, AdoptsOnDiskGenerationsAcrossRestart) {
  const std::string base = fresh_base("store_restart.ckpt");
  {
    CheckpointStore store(base);
    store.save(small_checkpoint(10));
    store.save(small_checkpoint(20));
  }
  // A fresh process (new store object) must continue, not restart, the
  // generation counter — and overwrite the OLDER slot first.
  CheckpointStore store(base);
  store.save(small_checkpoint(30));
  const auto loaded = store.load();
  EXPECT_EQ(loaded.checkpoint.generation, 3u);
  EXPECT_EQ(loaded.path, store.slot_a());
  EXPECT_EQ(load_checkpoint(store.slot_b()).generation, 2u);
}

TEST(CheckpointStoreTest, BothSlotsBadRaisesCheckpointError) {
  const std::string base = fresh_base("store_dead.ckpt");
  CheckpointStore store(base);
  std::ofstream(store.slot_a()) << "garbage";
  std::ofstream(store.slot_b()) << "dopf-checkpoint v1\ntruncated";
  EXPECT_THROW(store.load(), CheckpointError);
}

TEST(ResolveCheckpointTest, PrefersStoreSlotsOverPlainFile) {
  const std::string base = fresh_base("resolve.ckpt");
  save_checkpoint(small_checkpoint(5), base);
  EXPECT_EQ(resolve_checkpoint(base).checkpoint.iteration, 5);
  CheckpointStore store(base);
  store.save(small_checkpoint(40));
  EXPECT_EQ(resolve_checkpoint(base).checkpoint.iteration, 40);
}

}  // namespace
}  // namespace dopf::runtime
