/// Scenario file parsing + application: the input format behind
/// `dopf_solve --scenarios` (see src/runtime/scenario.hpp).

#include "runtime/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "feeders/ieee13.hpp"
#include "network/phase.hpp"

namespace dopf::runtime {
namespace {

std::vector<Scenario> parse(const std::string& text) {
  std::istringstream in(text);
  return parse_scenarios(in);
}

TEST(ScenarioParserTest, ParsesOverridesWithComments) {
  const auto scenarios = parse(
      "# morning valley\n"
      "scenario valley\n"
      "  load * scale 0.8   # everything light\n"
      "  gen gen-mid cost-scale 1.25\n"
      "end\n"
      "scenario peak\n"
      "  load constant scale 1.2\n"
      "  gen * pmax-scale 0.9\n"
      "end\n");
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].name, "valley");
  ASSERT_EQ(scenarios[0].overrides.size(), 2u);
  EXPECT_EQ(scenarios[0].overrides[0].kind,
            ScenarioOverride::Kind::kLoadScale);
  EXPECT_EQ(scenarios[0].overrides[0].target, "*");
  EXPECT_DOUBLE_EQ(scenarios[0].overrides[0].factor, 0.8);
  EXPECT_EQ(scenarios[0].overrides[1].kind,
            ScenarioOverride::Kind::kGenCostScale);
  EXPECT_EQ(scenarios[1].overrides[1].kind,
            ScenarioOverride::Kind::kGenPmaxScale);
}

TEST(ScenarioParserTest, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ScenarioError);
  EXPECT_THROW(parse("load * scale 0.9\n"), ScenarioError);  // outside block
  EXPECT_THROW(parse("scenario a\nload * scale 0.9\n"),
               ScenarioError);  // missing end
  EXPECT_THROW(parse("scenario a\nscenario b\nend\n"), ScenarioError);
  EXPECT_THROW(parse("scenario a\nfrobnicate x 2\nend\n"), ScenarioError);
  EXPECT_THROW(parse("scenario a\nload * scale -1\nend\n"), ScenarioError);
  EXPECT_THROW(parse("scenario a\nload * scale nope\nend\n"), ScenarioError);
  EXPECT_THROW(parse("scenario a\nload * scale 1x\nend\n"), ScenarioError);
  EXPECT_THROW(parse("scenario a\ngen * scale 2\nend\n"), ScenarioError);
}

TEST(ScenarioParserTest, RejectsDuplicateLoadOverrideWithBothLineNumbers) {
  // Regression: a later `load` line for the same target used to silently
  // overwrite the earlier one; it must be rejected naming BOTH lines.
  try {
    parse(
        "scenario a\n"
        "  load constant scale 0.9\n"
        "  gen * cost-scale 1.1\n"
        "  load constant scale 1.2\n"
        "end\n");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate load override"), std::string::npos)
        << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;   // duplicate
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;   // original
  }
  // Same target in DIFFERENT scenarios is fine; different targets in the
  // same scenario are fine.
  EXPECT_NO_THROW(parse(
      "scenario a\n  load constant scale 0.9\nend\n"
      "scenario b\n  load constant scale 1.1\nend\n"));
  EXPECT_NO_THROW(parse(
      "scenario a\n  load * scale 0.9\n  load constant scale 1.1\nend\n"));
}

TEST(ScenarioParserTest, ErrorsCarryLineNumbers) {
  try {
    parse("scenario a\nload * scale 0.9\nbogus\nend\n");
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioApplyTest, ScalesMatchingLoadsOnly) {
  const auto net = dopf::feeders::ieee13();
  const Scenario sc{
      "s", {{ScenarioOverride::Kind::kLoadScale, "constant", 1.5}}};
  const auto scaled = apply_scenario(net, sc);
  ASSERT_EQ(scaled.num_loads(), net.num_loads());
  bool any_constant = false;
  for (std::size_t i = 0; i < net.num_loads(); ++i) {
    const auto& before = net.load(static_cast<int>(i));
    const auto& after = scaled.load(static_cast<int>(i));
    const double factor = is_constant_power(before) ? 1.5 : 1.0;
    any_constant = any_constant || is_constant_power(before);
    for (auto p : {dopf::network::Phase::kA, dopf::network::Phase::kB,
                   dopf::network::Phase::kC}) {
      EXPECT_DOUBLE_EQ(after.p_ref[p], before.p_ref[p] * factor);
      EXPECT_DOUBLE_EQ(after.q_ref[p], before.q_ref[p] * factor);
    }
  }
  EXPECT_TRUE(any_constant);  // the target must have matched something
}

TEST(ScenarioApplyTest, UnmatchedTargetThrows) {
  const auto net = dopf::feeders::ieee13();
  const Scenario sc{
      "s", {{ScenarioOverride::Kind::kLoadScale, "no-such-load", 1.1}}};
  EXPECT_THROW(apply_scenario(net, sc), ScenarioError);
}

TEST(ScenarioApplyTest, ScenariosApplyToBaseIndependently) {
  const auto net = dopf::feeders::ieee13();
  const Scenario sc{"s",
                    {{ScenarioOverride::Kind::kGenCostScale, "*", 2.0}}};
  const auto once = apply_scenario(net, sc);
  const auto again = apply_scenario(net, sc);  // NOT compounding
  for (std::size_t i = 0; i < net.num_generators(); ++i) {
    EXPECT_DOUBLE_EQ(again.generator(static_cast<int>(i)).cost,
                     once.generator(static_cast<int>(i)).cost);
  }
}

}  // namespace
}  // namespace dopf::runtime
