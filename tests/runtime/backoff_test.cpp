/// Unit tests for the shared seeded-jittered-exponential backoff policy.
/// Three production retry loops ride on this one class (serve client
/// shed/transport retries, durable-write retries, worker-restart backoff),
/// so its contract is pinned here: jitter-free sequences are EXACT powers
/// (durable's simulated retry_seconds are compared with EXPECT_DOUBLE_EQ
/// downstream), jittered sequences are bounded and seed-reproducible, and
/// the cap outranks everything including the caller's floor hint.

#include "runtime/backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dopf::runtime {
namespace {

TEST(BackoffTest, JitterFreeSequenceIsExactPowers) {
  BackoffOptions opts;
  opts.base = 1e-3;
  opts.factor = 2.0;
  Backoff b(opts);
  // Exact doubles: 1e-3 * 2^n has an exact binary representation of the
  // product, and the jitter-free path must not touch the RNG at all.
  EXPECT_DOUBLE_EQ(b.next(), 1e-3);
  EXPECT_DOUBLE_EQ(b.next(), 2e-3);
  EXPECT_DOUBLE_EQ(b.next(), 4e-3);
  EXPECT_EQ(b.attempt(), 3);
}

TEST(BackoffTest, DelayIsStatelessInAttempt) {
  BackoffOptions opts;
  opts.base = 10.0;
  opts.factor = 3.0;
  Backoff b(opts);
  EXPECT_DOUBLE_EQ(b.delay(0), 10.0);
  EXPECT_DOUBLE_EQ(b.delay(2), 90.0);
  EXPECT_DOUBLE_EQ(b.delay(1), 30.0);
  // delay() never advances the internal counter.
  EXPECT_EQ(b.attempt(), 0);
}

TEST(BackoffTest, CapBoundsGrowth) {
  BackoffOptions opts;
  opts.base = 1.0;
  opts.factor = 2.0;
  opts.max = 5.0;
  Backoff b(opts);
  EXPECT_DOUBLE_EQ(b.delay(0), 1.0);
  EXPECT_DOUBLE_EQ(b.delay(2), 4.0);
  EXPECT_DOUBLE_EQ(b.delay(3), 5.0);
  EXPECT_DOUBLE_EQ(b.delay(30), 5.0);  // far past overflow territory
}

TEST(BackoffTest, FloorHintOutranksLocalDelayButNotCap) {
  BackoffOptions opts;
  opts.base = 1.0;
  opts.factor = 2.0;
  opts.max = 100.0;
  Backoff b(opts);
  // A server's retry-after hint outranks local impatience...
  EXPECT_DOUBLE_EQ(b.delay(0, 50.0), 50.0);
  // ...but never the cap,
  EXPECT_DOUBLE_EQ(b.delay(0, 500.0), 100.0);
  // and a small hint leaves a larger computed delay alone.
  EXPECT_DOUBLE_EQ(b.delay(4, 3.0), 16.0);
}

TEST(BackoffTest, JitterStaysWithinConfiguredBand) {
  BackoffOptions opts;
  opts.base = 100.0;
  opts.factor = 2.0;
  opts.max = 1e9;
  opts.jitter_min = 0.5;
  opts.jitter_max = 1.0;
  opts.seed = 7;
  Backoff b(opts);
  for (int attempt = 0; attempt < 10; ++attempt) {
    const double nominal = 100.0 * (1 << attempt);
    const double d = b.next();
    EXPECT_GE(d, 0.5 * nominal) << "attempt " << attempt;
    EXPECT_LT(d, 1.0 * nominal) << "attempt " << attempt;
  }
}

TEST(BackoffTest, SameSeedReproducesTheExactSequence) {
  BackoffOptions opts;
  opts.base = 50.0;
  opts.factor = 2.0;
  opts.max = 2000.0;
  opts.jitter_min = 0.5;
  opts.jitter_max = 1.0;
  opts.seed = 42;
  Backoff a(opts), b(opts);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.next(), b.next()) << "draw " << i;
  }
}

TEST(BackoffTest, DifferentSeedsDesynchronize) {
  BackoffOptions opts;
  opts.base = 50.0;
  opts.jitter_min = 0.5;
  opts.jitter_max = 1.0;
  opts.seed = 1;
  Backoff a(opts);
  opts.seed = 2;
  Backoff b(opts);
  // The point of per-slot seeds: a worker-crash storm must not restart
  // every slot on the same schedule. One equal draw is possible; all
  // sixteen equal would mean the seed is ignored.
  bool any_difference = false;
  for (int i = 0; i < 16; ++i) {
    if (a.next() != b.next()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(BackoffTest, ResetRewindsAttemptButNotTheJitterStream) {
  BackoffOptions opts;
  opts.base = 100.0;
  opts.jitter_min = 0.5;
  opts.jitter_max = 1.0;
  opts.seed = 9;
  Backoff b(opts);
  std::vector<double> first{b.next(), b.next(), b.next()};
  b.reset();
  EXPECT_EQ(b.attempt(), 0);
  std::vector<double> second{b.next(), b.next(), b.next()};
  // Attempt counter rewinds (same nominal schedule)...
  for (std::size_t i = 0; i < first.size(); ++i) {
    const double nominal = 100.0 * (1 << i);
    EXPECT_GE(second[i], 0.5 * nominal);
    EXPECT_LT(second[i], nominal);
  }
  // ...but the jitter stream keeps advancing: a reset loop must not replay
  // the previous loop's exact delays.
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace dopf::runtime
