#include "runtime/instances.hpp"

#include <gtest/gtest.h>

#include "opf/stats.hpp"
#include "runtime/measure.hpp"

namespace dopf::runtime {
namespace {

TEST(InstancesTest, Ieee13MatchesPaperTable3) {
  const Instance inst = make_instance("ieee13");
  const auto counts = dopf::opf::component_counts(inst.net, inst.problem);
  EXPECT_EQ(counts.nodes, 29u);
  EXPECT_EQ(counts.lines, 28u);
  EXPECT_EQ(counts.leaves, 7u);
  EXPECT_EQ(counts.S, 50u);
}

TEST(InstancesTest, Ieee123MatchesPaperTable3) {
  const Instance inst = make_instance("ieee123");
  const auto counts = dopf::opf::component_counts(inst.net, inst.problem);
  EXPECT_EQ(counts.nodes, 147u);
  EXPECT_EQ(counts.lines, 146u);
  EXPECT_EQ(counts.leaves, 43u);
  EXPECT_EQ(counts.S, 250u);
}

TEST(InstancesTest, UnknownNameThrows) {
  EXPECT_THROW(make_instance("ieee999"), std::invalid_argument);
}

TEST(InstancesTest, PaperListHasThreeInstances) {
  const auto names = paper_instance_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "ieee13");
  EXPECT_EQ(names[2], "ieee8500");
}

TEST(InstancesTest, DecomposeOptionsArePassedThrough) {
  dopf::opf::DecomposeOptions opts;
  opts.merge_leaves = false;
  const Instance inst = make_instance("ieee13", opts);
  EXPECT_EQ(inst.problem.num_components(), 29u + 28u);
}

TEST(MeasureTest, SolverFreeCostsArePopulated) {
  const Instance inst = make_instance("ieee13");
  const IterationCosts costs =
      measure_solver_free(inst.problem, dopf::core::AdmmOptions{}, 20);
  EXPECT_EQ(costs.measured_iterations, 20);
  EXPECT_EQ(costs.component_seconds.size(), inst.problem.num_components());
  EXPECT_EQ(costs.payload_vars.size(), inst.problem.num_components());
  EXPECT_GT(costs.local_update_seconds, 0.0);
  EXPECT_GT(costs.global_update_seconds, 0.0);
  double sum = 0.0;
  for (double s : costs.component_seconds) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, costs.local_update_seconds, 1e-12);
  for (std::size_t s = 0; s < costs.payload_vars.size(); ++s) {
    EXPECT_EQ(costs.payload_vars[s],
              inst.problem.components[s].num_vars());
  }
}

TEST(MeasureTest, NonPositiveIterationCountRejected) {
  const Instance inst = make_instance("ieee13");
  EXPECT_THROW(
      measure_solver_free(inst.problem, dopf::core::AdmmOptions{}, 0),
      std::invalid_argument);
  EXPECT_THROW(
      measure_benchmark(inst.problem, dopf::core::AdmmOptions{}, -3),
      std::invalid_argument);
}

TEST(MeasureTest, BenchmarkLocalUpdateCostsDominateSolverFree) {
  // The core performance claim at per-iteration granularity.
  const Instance inst = make_instance("ieee13");
  const auto ours =
      measure_solver_free(inst.problem, dopf::core::AdmmOptions{}, 20);
  const auto baseline =
      measure_benchmark(inst.problem, dopf::core::AdmmOptions{}, 20);
  EXPECT_GT(baseline.local_update_seconds,
            2.0 * ours.local_update_seconds);
}

}  // namespace
}  // namespace dopf::runtime
