/// DeviceHealth state machine: EWMA tracking, failure streaks, the
/// healthy -> degraded -> quarantined -> probation -> healthy lifecycle, and
/// the one-shot quarantine/readmission edge signals.

#include "runtime/health.hpp"

#include <gtest/gtest.h>

namespace dopf::runtime {
namespace {

DegradePolicy tight_policy() {
  DegradePolicy p;
  p.enabled = true;
  p.ewma_alpha = 0.5;
  p.straggle_threshold = 2.0;
  p.failure_threshold = 3;
  p.staleness_bound = 4;
  p.probation_iterations = 3;
  return p;
}

TEST(DeviceHealthTest, StartsHealthyAndStaysHealthyOnNominalInput) {
  DeviceHealth h(tight_policy());
  EXPECT_EQ(h.state(), DeviceState::kHealthy);
  EXPECT_TRUE(h.participating());
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(h.observe(1.0, 0), DeviceState::kHealthy);
  }
  EXPECT_DOUBLE_EQ(h.ewma_straggle(), 1.0);
  EXPECT_EQ(h.consecutive_failures(), 0);
  EXPECT_FALSE(h.quarantine_pending());
}

TEST(DeviceHealthTest, EwmaSmoothsTheStraggleFactor) {
  DeviceHealth h(tight_policy());
  // One observation at 9.0 with alpha 0.5: 0.5*9 + 0.5*1 = 5.
  h.observe(9.0, 0);
  EXPECT_DOUBLE_EQ(h.ewma_straggle(), 5.0);
  // Back to nominal: decays geometrically, 0.5*1 + 0.5*5 = 3.
  h.observe(1.0, 0);
  EXPECT_DOUBLE_EQ(h.ewma_straggle(), 3.0);
}

TEST(DeviceHealthTest, OneSlowIterationDoesNotDegrade) {
  // A single 3x blip smooths to 0.5*3 + 0.5*1 = 2.0, at (not above) the
  // threshold: the device stays a full participant.
  DeviceHealth h(tight_policy());
  EXPECT_EQ(h.observe(3.0, 0), DeviceState::kHealthy);
  EXPECT_EQ(h.observe(1.0, 0), DeviceState::kHealthy);
}

TEST(DeviceHealthTest, PersistentStraggleDegradesThenQuarantines) {
  DeviceHealth h(tight_policy());
  EXPECT_EQ(h.observe(64.0, 0), DeviceState::kDegraded);
  EXPECT_EQ(h.staleness(), 1);
  // Staleness accrues while unhealthy; past the bound the edge signal fires.
  for (int t = 0; t < 4; ++t) {
    h.observe(64.0, 0);
  }
  EXPECT_EQ(h.staleness(), 5);
  EXPECT_TRUE(h.quarantine_pending());
  EXPECT_EQ(h.state(), DeviceState::kDegraded);  // caller has not acked yet

  h.acknowledge();
  EXPECT_FALSE(h.quarantine_pending());
  EXPECT_EQ(h.state(), DeviceState::kQuarantined);
  EXPECT_FALSE(h.participating());
}

TEST(DeviceHealthTest, RecoveryWithinBoundRejoinsImmediately) {
  // A mild straggler (EWMA decays below the threshold within the staleness
  // bound) must rejoin without ever arming the quarantine signal.
  DeviceHealth h(tight_policy());
  h.observe(6.0, 0);
  ASSERT_EQ(h.state(), DeviceState::kDegraded);
  // Nominal again: the EWMA needs a few iterations to decay below 2.
  int t = 0;
  while (h.state() == DeviceState::kDegraded && t < 20) {
    h.observe(1.0, 0);
    ++t;
  }
  EXPECT_EQ(h.state(), DeviceState::kHealthy);
  EXPECT_EQ(h.staleness(), 0);
  EXPECT_FALSE(h.quarantine_pending());
}

TEST(DeviceHealthTest, ConsecutiveFailuresDegradeWithoutStraggle) {
  DeviceHealth h(tight_policy());
  EXPECT_EQ(h.observe(1.0, 1), DeviceState::kHealthy);
  EXPECT_EQ(h.observe(1.0, 2), DeviceState::kHealthy);
  EXPECT_EQ(h.observe(1.0, 1), DeviceState::kDegraded);  // 3rd in a row
  EXPECT_EQ(h.consecutive_failures(), 3);
  // One clean delivery resets the streak and the device rejoins.
  EXPECT_EQ(h.observe(1.0, 0), DeviceState::kHealthy);
  EXPECT_EQ(h.consecutive_failures(), 0);
}

TEST(DeviceHealthTest, ProbationEarnsReadmissionAndForgivesHistory) {
  DeviceHealth h(tight_policy());
  // Drive into quarantine.
  for (int t = 0; t < 6; ++t) h.observe(64.0, 0);
  ASSERT_TRUE(h.quarantine_pending());
  h.acknowledge();
  ASSERT_EQ(h.state(), DeviceState::kQuarantined);

  // Still sick: the probation streak never starts.
  h.observe(64.0, 0);
  EXPECT_EQ(h.probation_streak(), 0);
  EXPECT_EQ(h.state(), DeviceState::kQuarantined);

  // Healthy probes: EWMA must first decay below the threshold, then a
  // clean streak of `probation_iterations` earns the readmission signal.
  int t = 0;
  while (!h.readmission_pending() && t < 50) {
    h.observe(1.0, 0);
    ++t;
  }
  ASSERT_TRUE(h.readmission_pending());
  EXPECT_EQ(h.state(), DeviceState::kProbation);
  EXPECT_EQ(h.probation_streak(), tight_policy().probation_iterations);

  h.acknowledge();
  EXPECT_EQ(h.state(), DeviceState::kHealthy);
  EXPECT_TRUE(h.participating());
  // History forgiven: back to the pristine tracker values.
  EXPECT_DOUBLE_EQ(h.ewma_straggle(), 1.0);
  EXPECT_EQ(h.consecutive_failures(), 0);
}

TEST(DeviceHealthTest, UnhealthyProbeResetsProbationStreak) {
  DeviceHealth h(tight_policy());
  for (int t = 0; t < 6; ++t) h.observe(64.0, 0);
  h.acknowledge();
  ASSERT_EQ(h.state(), DeviceState::kQuarantined);
  // Decay the EWMA to healthy, start a streak (but stop short of the
  // readmission threshold)...
  for (int t = 0; t < 20 && h.probation_streak() < 2; ++t) h.observe(1.0, 0);
  ASSERT_EQ(h.probation_streak(), 2);
  ASSERT_FALSE(h.readmission_pending());
  // ...then relapse: the streak resets to zero.
  h.observe(64.0, 0);
  EXPECT_EQ(h.probation_streak(), 0);
  EXPECT_EQ(h.state(), DeviceState::kQuarantined);
}

TEST(DeviceHealthTest, StateNamesAreStable) {
  EXPECT_STREQ(to_string(DeviceState::kHealthy), "healthy");
  EXPECT_STREQ(to_string(DeviceState::kDegraded), "degraded");
  EXPECT_STREQ(to_string(DeviceState::kQuarantined), "quarantined");
  EXPECT_STREQ(to_string(DeviceState::kProbation), "probation");
}

TEST(DeviceHealthTest, ToStringReportsStateAndCounters) {
  DeviceHealth h(tight_policy());
  h.observe(64.0, 0);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("degraded"), std::string::npos) << s;
  EXPECT_NE(s.find("staleness"), std::string::npos) << s;
}

}  // namespace
}  // namespace dopf::runtime
