#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dopf::runtime {
namespace {

TEST(ThreadPoolTest, StartupAndShutdown) {
  for (int threads : {1, 2, 4, 16}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }  // destructor joins the workers; no job ever submitted
}

TEST(ThreadPoolTest, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10007;  // prime: uneven chunks
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](int, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ChunksAreContiguousAndOrderedByLane) {
  ThreadPool pool(4);
  const std::size_t n = 10;  // fewer items than would fill all lanes evenly
  std::vector<int> lane_of(n, -1);
  pool.parallel_for(n, [&](int lane, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) lane_of[i] = lane;
  });
  // Static partition: lane ids are non-decreasing across [0, n).
  for (std::size_t i = 1; i < n; ++i) EXPECT_GE(lane_of[i], lane_of[i - 1]);
  EXPECT_EQ(lane_of.front(), 0);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](int, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  ASSERT_GE(pool.size(), 2);
  EXPECT_THROW(
      pool.parallel_for(
          1000,
          [&](int lane, std::size_t, std::size_t) {
            if (lane == pool.size() - 1) {  // thrown on a worker thread
              throw std::runtime_error("worker boom");
            }
          }),
      std::runtime_error);
}

TEST(ThreadPoolTest, CallerLaneExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](int lane, std::size_t, std::size_t) {
                                   if (lane == 0) {  // caller's own lane
                                     throw std::logic_error("lane0 boom");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, FirstExceptionInLaneOrderWins) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(1000, [](int lane, std::size_t, std::size_t) {
      throw std::runtime_error("lane " + std::to_string(lane));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "lane 0");
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyJobsAndAfterExceptions) {
  ThreadPool pool(4);
  const std::size_t n = 4096;
  std::vector<double> data(n, 1.0);
  double expected = static_cast<double>(n);
  for (int round = 0; round < 50; ++round) {
    if (round == 25) {  // an exception must not poison the pool
      EXPECT_THROW(pool.parallel_for(n,
                                     [](int, std::size_t, std::size_t) {
                                       throw std::runtime_error("mid-run");
                                     }),
                   std::runtime_error);
    }
    pool.parallel_for(n, [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) data[i] *= 1.0009765625;
    });
    expected *= 1.0009765625;
  }
  const double sum = std::accumulate(data.begin(), data.end(), 0.0);
  EXPECT_NEAR(sum, expected, 1e-9 * expected);
}

TEST(ThreadPoolTest, FewerItemsThanLanes) {
  ThreadPool pool(16);
  const std::size_t n = 3;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](int, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

}  // namespace
}  // namespace dopf::runtime
