/// Torn-file fuzzing: every byte-prefix of a checkpoint and of a stream
/// replay record must surface as a typed error (CheckpointError /
/// StreamRecordError) — never a crash, hang, or silently partial restore.
/// This is the load-side contract behind the A/B fallback: a slot torn at
/// ANY byte is rejected with a diagnostic, so CheckpointStore::load can
/// always tell a good generation from a half-written one.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "runtime/checkpoint.hpp"
#include "stream/driver.hpp"

#ifndef DOPF_GOLDEN_DIR
#error "DOPF_GOLDEN_DIR must point at tests/golden"
#endif

namespace dopf::runtime {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TruncationFuzzTest, EveryCheckpointPrefixRaisesTypedError) {
  const std::string golden = read_file(std::string(DOPF_GOLDEN_DIR) +
                                       "/ieee13.ckpt");
  ASSERT_GT(golden.size(), 1000u) << "golden checkpoint missing?";

  // The full file must parse (the fuzz loop below proves nothing if the
  // corpus itself is stale). So must the prefix missing only the trailing
  // newline: every bit of state and the full CRC are present, so rejecting
  // it would be a false positive, not robustness.
  ASSERT_EQ(golden.back(), '\n');
  for (const std::size_t len : {golden.size(), golden.size() - 1}) {
    std::istringstream full(golden.substr(0, len));
    const AdmmCheckpoint ck = read_checkpoint(full);
    EXPECT_FALSE(ck.x.empty());
  }

  for (std::size_t len = 0; len + 1 < golden.size(); ++len) {
    std::istringstream in(golden.substr(0, len));
    try {
      read_checkpoint(in);
      FAIL() << "prefix of " << len << " bytes parsed as a valid checkpoint";
    } catch (const CheckpointError&) {
      // expected: typed rejection
    } catch (const std::exception& e) {
      FAIL() << "prefix of " << len << " bytes raised untyped "
             << typeid(e).name() << ": " << e.what();
    }
  }
}

/// A synthetic replay record exercising every line type write_records
/// emits (header, step lines, session footer, record_crc) without running
/// a solve.
std::string synthetic_record() {
  dopf::stream::StreamProfile profile;
  profile.name = "fuzz";
  profile.num_steps = 3;
  profile.dt_seconds = 300.0;
  dopf::stream::StreamResult result;
  result.first_step = 0;
  for (int k = 0; k < profile.num_steps; ++k) {
    dopf::stream::StreamStepRecord rec;
    rec.step = k;
    rec.status = dopf::core::AdmmStatus::kConverged;
    rec.converged = true;
    rec.warm_started = k > 0;
    rec.switched = k == 1;
    rec.iterations = 40 + k;
    rec.objective = 1.25 + 0.5 * k;
    rec.primal_residual = 1e-7;
    rec.dual_residual = 2e-7;
    rec.model_fp = 0x1234abcdu + static_cast<std::uint64_t>(k);
    rec.scenario_fp = 0xfeed0000u + static_cast<std::uint64_t>(k);
    result.steps.push_back(rec);
  }
  result.session.solves = 3;
  result.session.cold_solves = 1;
  result.session.warm_solves = 2;
  std::ostringstream out;
  dopf::stream::write_records(result, profile, out);
  return out.str();
}

TEST(TruncationFuzzTest, EveryStreamRecordPrefixRaisesTypedError) {
  const std::string record = synthetic_record();
  ASSERT_GT(record.size(), 100u);

  // Full file and the trailing-newline-less prefix both carry the complete
  // CRC-verified payload and must parse.
  ASSERT_EQ(record.back(), '\n');
  for (const std::size_t len : {record.size(), record.size() - 1}) {
    std::istringstream full(record.substr(0, len));
    const dopf::stream::ReplayRecordFile file =
        dopf::stream::read_records(full);
    EXPECT_EQ(file.profile, "fuzz");
    EXPECT_EQ(file.num_steps, 3);
    ASSERT_EQ(file.step_lines.size(), 3u);
  }

  for (std::size_t len = 0; len + 1 < record.size(); ++len) {
    std::istringstream in(record.substr(0, len));
    try {
      dopf::stream::read_records(in);
      FAIL() << "prefix of " << len << " bytes parsed as a valid record file";
    } catch (const dopf::stream::StreamRecordError&) {
      // expected: typed rejection
    } catch (const std::exception& e) {
      FAIL() << "prefix of " << len << " bytes raised untyped "
             << typeid(e).name() << ": " << e.what();
    }
  }
}

/// Flipping any single byte of the CRC-guarded body must also be rejected —
/// truncation is not the only torn-write shape (a short write into an
/// existing longer file leaves a spliced hybrid). The trailing record_crc
/// line itself is covered for its hex digits (a flipped digit changes the
/// stored value, which then mismatches the body).
TEST(TruncationFuzzTest, BitFlipsInStreamRecordAreRejected) {
  const std::string record = synthetic_record();
  const std::size_t crc_line = record.rfind("record_crc ");
  ASSERT_NE(crc_line, std::string::npos);
  const std::size_t guarded = crc_line + std::string("record_crc 0123abcd").size();
  for (std::size_t pos = 0; pos < guarded; pos += 7) {
    std::string mutated = record;
    mutated[pos] ^= 0x01;
    if (mutated == record) continue;
    std::istringstream in(mutated);
    try {
      const auto file = dopf::stream::read_records(in);
      // A flip inside the header's profile name can still CRC-mismatch;
      // parsing "succeeding" here would mean the CRC failed to notice.
      FAIL() << "bit flip at byte " << pos << " went undetected";
    } catch (const dopf::stream::StreamRecordError&) {
      // expected
    } catch (const std::exception& e) {
      FAIL() << "bit flip at byte " << pos << " raised untyped "
             << typeid(e).name() << ": " << e.what();
    }
  }
}

}  // namespace
}  // namespace dopf::runtime
