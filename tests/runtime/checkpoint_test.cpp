/// Checkpoint serialization: bit-exact round-trips, CRC tamper detection,
/// and capture/restore resume equivalence on the core solver.

#include "runtime/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <bit>
#include <limits>
#include <sstream>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "feeders/synthetic.hpp"
#include "opf/decompose.hpp"

namespace dopf::runtime {
namespace {

const dopf::opf::DistributedProblem& problem() {
  static const auto net = dopf::feeders::ieee13();
  static const auto p = dopf::opf::decompose(net);
  return p;
}

AdmmCheckpoint awkward_checkpoint() {
  // Values chosen to break any decimal round-trip: denormals, negative
  // zero, third-of-one, and the extremes of the double range.
  AdmmCheckpoint ck;
  ck.label = "awkward";
  ck.iteration = 123;
  ck.rho = 1.0 / 3.0;
  ck.x = {0.0, -0.0, 1.0 / 3.0, std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::max()};
  ck.z = {-1e-300, 2.5, std::numeric_limits<double>::min()};
  ck.z_prev = {3.0, -4.0, 5e17};
  ck.lambda = {0.1, -0.2};
  return ck;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << "[" << i << "]";
  }
}

TEST(CheckpointTest, RoundTripPreservesEveryBit) {
  const AdmmCheckpoint ck = awkward_checkpoint();
  std::stringstream buf;
  write_checkpoint(ck, buf);
  const AdmmCheckpoint back = read_checkpoint(buf);
  EXPECT_EQ(back.label, ck.label);
  EXPECT_EQ(back.iteration, ck.iteration);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.rho),
            std::bit_cast<std::uint64_t>(ck.rho));
  expect_bitwise_equal(back.x, ck.x, "x");
  expect_bitwise_equal(back.z, ck.z, "z");
  expect_bitwise_equal(back.z_prev, ck.z_prev, "z_prev");
  expect_bitwise_equal(back.lambda, ck.lambda, "lambda");
}

TEST(CheckpointTest, FileSaveLoadRoundTrips) {
  const AdmmCheckpoint ck = awkward_checkpoint();
  const std::string path = ::testing::TempDir() + "/dopf_ckpt_test.ckpt";
  save_checkpoint(ck, path);
  const AdmmCheckpoint back = load_checkpoint(path);
  EXPECT_EQ(back.iteration, ck.iteration);
  expect_bitwise_equal(back.x, ck.x, "x");
}

TEST(CheckpointTest, CrcDetectsTamperedPayload) {
  std::stringstream buf;
  write_checkpoint(awkward_checkpoint(), buf);
  std::string text = buf.str();
  // Flip one hex digit inside the body (not the header, not the crc line).
  const auto pos = text.find("0x1");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 2] = text[pos + 2] == '1' ? '2' : '1';
  std::stringstream tampered(text);
  EXPECT_THROW(read_checkpoint(tampered), CheckpointError);
}

TEST(CheckpointTest, TruncationDetected) {
  std::stringstream buf;
  write_checkpoint(awkward_checkpoint(), buf);
  const std::string text = buf.str();
  for (const std::size_t keep :
       {text.size() / 4, text.size() / 2, text.size() - 5}) {
    std::stringstream cut(text.substr(0, keep));
    EXPECT_THROW(read_checkpoint(cut), CheckpointError) << keep << " bytes";
  }
}

TEST(CheckpointTest, GarbageRejected) {
  std::stringstream not_a_checkpoint("hello world\n1 2 3\n");
  EXPECT_THROW(read_checkpoint(not_a_checkpoint), CheckpointError);
}

TEST(CheckpointTest, RestoreSizeMismatchThrows) {
  dopf::core::SolverFreeAdmm admm(problem(), {});
  AdmmCheckpoint ck = awkward_checkpoint();  // wrong layout for ieee13
  EXPECT_THROW(ck.restore(&admm), CheckpointError);
}

TEST(CheckpointTest, WrongFeederCheckpointRefusedBeforeStateTouched) {
  // A CRC-valid checkpoint from a different feeder must be rejected with a
  // message naming the mismatch — and the solver state must be untouched.
  static const auto net123 =
      dopf::feeders::synthetic_feeder(dopf::feeders::ieee123_spec());
  static const auto p123 = dopf::opf::decompose(net123);
  dopf::core::SolverFreeAdmm other(p123, {});
  const AdmmCheckpoint foreign =
      AdmmCheckpoint::capture(other, 50, "ieee123");

  dopf::core::SolverFreeAdmm admm(problem(), {});
  const std::vector<double> x_before(admm.x().begin(), admm.x().end());
  try {
    foreign.restore(&admm);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does not fit"), std::string::npos) << what;
    EXPECT_NE(what.find("ieee123"), std::string::npos) << what;
  }
  expect_bitwise_equal(std::vector<double>(admm.x().begin(), admm.x().end()),
                       x_before, "x untouched");
  EXPECT_EQ(admm.start_iteration(), 0);

  // Label mismatch alone (same feeder, different declared instance) is also
  // refused when the caller states what it expects.
  const AdmmCheckpoint same_shape = AdmmCheckpoint::capture(admm, 0, "ieee13");
  EXPECT_NO_THROW(same_shape.validate_for(admm, "ieee13"));
  EXPECT_THROW(same_shape.validate_for(admm, "ieee13_mod"), CheckpointError);
}

TEST(CheckpointTest, CaptureRestoreResumesBitExactly) {
  dopf::core::AdmmOptions opt;
  opt.check_every = 10;

  // Uninterrupted reference run.
  dopf::core::SolverFreeAdmm full(problem(), opt);
  const auto ref = full.solve();
  ASSERT_TRUE(ref.converged);

  // Interrupted run: capture at iteration 40 through the hook, push the
  // checkpoint through the serializer, restore into a FRESH solver, and
  // let it finish. The two final states must agree in every bit.
  dopf::core::SolverFreeAdmm first(problem(), opt);
  AdmmCheckpoint ck;
  first.set_checkpoint_hook(
      40, [&](const dopf::core::SolverFreeAdmm& solver, int iteration) {
        if (iteration == 40) {
          ck = AdmmCheckpoint::capture(solver, iteration, "ieee13");
        }
      });
  first.solve();
  ASSERT_EQ(ck.iteration, 40);

  std::stringstream buf;
  write_checkpoint(ck, buf);
  const AdmmCheckpoint loaded = read_checkpoint(buf);

  dopf::core::SolverFreeAdmm resumed(problem(), opt);
  loaded.restore(&resumed);
  EXPECT_EQ(resumed.start_iteration(), 40);
  const auto res = resumed.solve();

  EXPECT_EQ(res.iterations, ref.iterations);
  EXPECT_EQ(res.status, ref.status);
  expect_bitwise_equal(res.x, ref.x, "x");
  // The resumed history holds exactly the post-restart records.
  ASSERT_FALSE(res.history.empty());
  EXPECT_GT(res.history.front().iteration, 40);
  EXPECT_EQ(res.history.back().iteration, ref.history.back().iteration);
}

TEST(CheckpointTest, CheckpointBytesCoversState) {
  const AdmmCheckpoint ck = awkward_checkpoint();
  EXPECT_EQ(checkpoint_bytes(ck),
            sizeof(double) * (5 + 3 + 3 + 2) + sizeof(double) + sizeof(int));
}

TEST(CheckpointTest, FingerprintsRoundTripThroughSerializer) {
  dopf::core::SolverFreeAdmm admm(problem(), {});
  const AdmmCheckpoint ck = AdmmCheckpoint::capture(admm, 7, "ieee13");
  EXPECT_NE(ck.model_fingerprint, 0u);
  EXPECT_NE(ck.scenario_fingerprint, 0u);

  std::stringstream buf;
  write_checkpoint(ck, buf);
  const AdmmCheckpoint back = read_checkpoint(buf);
  EXPECT_EQ(back.model_fingerprint, ck.model_fingerprint);
  EXPECT_EQ(back.scenario_fingerprint, ck.scenario_fingerprint);
}

TEST(CheckpointTest, LegacyCheckpointWithoutFingerprintsStillLoads) {
  // A checkpoint written before fingerprints existed has no model_fp /
  // scenario_fp lines; it must load with both fingerprints 0 (= unknown)
  // and validate against any solver of the right shape.
  const AdmmCheckpoint legacy = awkward_checkpoint();  // fps default to 0
  std::stringstream buf;
  write_checkpoint(legacy, buf);
  EXPECT_EQ(buf.str().find("model_fp"), std::string::npos);
  EXPECT_EQ(buf.str().find("scenario_fp"), std::string::npos);
  const AdmmCheckpoint back = read_checkpoint(buf);
  EXPECT_EQ(back.model_fingerprint, 0u);
  EXPECT_EQ(back.scenario_fingerprint, 0u);
}

TEST(CheckpointTest, ScenarioFingerprintMismatchRejected) {
  // Capture against the base scenario, then rebind the loads: the resumed
  // state would be meaningless against the edited data, so validate_for
  // must refuse with a scenario-mismatch diagnostic.
  dopf::core::SolverFreeAdmm admm(problem(), {});
  AdmmCheckpoint ck = AdmmCheckpoint::capture(admm, 10, "ieee13");
  EXPECT_NO_THROW(ck.validate_for(admm, "ieee13"));

  ck.scenario_fingerprint ^= 0x1;  // any rebind changes the fingerprint
  try {
    ck.validate_for(admm, "ieee13");
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scenario"), std::string::npos) << what;
  }

  // A model-fingerprint mismatch (different topology) is also refused.
  AdmmCheckpoint ck2 = AdmmCheckpoint::capture(admm, 10, "ieee13");
  ck2.model_fingerprint ^= 0x1;
  EXPECT_THROW(ck2.validate_for(admm, "ieee13"), CheckpointError);
}

}  // namespace
}  // namespace dopf::runtime
