#include "runtime/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dopf::runtime {
namespace {

TEST(PartitionTest, BlockPartitionCoversEverythingOnce) {
  const Partition p = block_partition(10, 3);
  ASSERT_EQ(p.size(), 3u);
  std::vector<int> seen(10, 0);
  for (const auto& part : p) {
    for (std::size_t s : part) ++seen[s];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  // Near-even: sizes 4, 3, 3.
  EXPECT_EQ(p[0].size(), 4u);
  EXPECT_EQ(p[1].size(), 3u);
  EXPECT_EQ(p[2].size(), 3u);
}

TEST(PartitionTest, BlockPartitionMoreRanksThanItems) {
  const Partition p = block_partition(2, 5);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p[0].size(), 1u);
  EXPECT_EQ(p[1].size(), 1u);
  EXPECT_TRUE(p[2].empty());
}

TEST(PartitionTest, LptMoreRanksThanItems) {
  // Ranks beyond the item count must come back empty, never crash, and the
  // loaded ranks still hold every item exactly once.
  std::vector<double> w = {3.0, 1.0, 2.0};
  const Partition p = lpt_partition(w, 8);
  ASSERT_EQ(p.size(), 8u);
  std::vector<int> seen(w.size(), 0);
  std::size_t empty = 0;
  for (const auto& part : p) {
    if (part.empty()) ++empty;
    for (std::size_t s : part) ++seen[s];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_EQ(empty, 5u);
  // With at least as many ranks as items, LPT is optimal: the makespan is
  // the single heaviest item.
  EXPECT_DOUBLE_EQ(makespan(p, w), 3.0);
}

TEST(PartitionTest, MakespanTolerantOfEmptyRanks) {
  std::vector<double> w = {1.0, 2.0};
  const Partition p = {{0}, {}, {1}, {}};
  EXPECT_DOUBLE_EQ(makespan(p, w), 2.0);
  const Partition all_empty = {{}, {}};
  EXPECT_DOUBLE_EQ(makespan(all_empty, w), 0.0);
}

TEST(PartitionTest, ZeroRanksThrows) {
  EXPECT_THROW(block_partition(5, 0), std::invalid_argument);
  std::vector<double> w(3, 1.0);
  EXPECT_THROW(lpt_partition(w, 0), std::invalid_argument);
}

TEST(PartitionTest, LptBalancesSkewedWeights) {
  // One heavy item + many light ones: LPT puts the heavy one alone.
  std::vector<double> w = {10.0, 1.0, 1.0, 1.0, 1.0, 1.0,
                           1.0, 1.0, 1.0, 1.0, 1.0};
  const Partition p = lpt_partition(w, 2);
  const double span = makespan(p, w);
  EXPECT_NEAR(span, 10.0, 1e-12);

  // Block partition on the same weights is worse.
  const Partition blocks = block_partition(w.size(), 2);
  EXPECT_GT(makespan(blocks, w), span - 1e-12);
}

TEST(PartitionTest, MakespanIsMaxRankLoad) {
  std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  Partition p = {{0, 3}, {1, 2}};  // loads 5 and 5
  EXPECT_DOUBLE_EQ(makespan(p, w), 5.0);
  p = {{0, 1, 2}, {3}};  // loads 6 and 4
  EXPECT_DOUBLE_EQ(makespan(p, w), 6.0);
}

TEST(PartitionTest, LptCoversEverythingOnce) {
  std::vector<double> w(23);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 1.0 + static_cast<double>(i % 5);
  }
  const Partition p = lpt_partition(w, 4);
  std::vector<int> seen(w.size(), 0);
  for (const auto& part : p) {
    for (std::size_t s : part) ++seen[s];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  // LPT guarantee: makespan <= (4/3 - 1/3m) * OPT <= 4/3 * average bound.
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  const double lower = std::max(total / 4.0, 5.0);
  EXPECT_LE(makespan(p, w), lower * 4.0 / 3.0 + 1e-9);
}

}  // namespace
}  // namespace dopf::runtime
