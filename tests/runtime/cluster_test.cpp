#include "runtime/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dopf::runtime {
namespace {

struct TestData {
  std::vector<double> seconds;
  std::vector<std::size_t> vars;
  TestData(std::size_t s, double per_comp, std::size_t per_vars) {
    seconds.assign(s, per_comp);
    vars.assign(s, per_vars);
  }
};

TEST(CommModelTest, MessageSecondsIsAffine) {
  CommModel comm;
  comm.latency_s = 1e-6;
  comm.bandwidth_gb_s = 1.0;
  EXPECT_NEAR(comm.message_seconds(0), 1e-6, 1e-15);
  EXPECT_NEAR(comm.message_seconds(1'000'000'000), 1e-6 + 1.0, 1e-12);
}

TEST(VirtualClusterTest, ComputeDecreasesWithRanks) {
  // Fig. 1(b): more CPUs -> faster subproblem phase.
  const TestData data(1000, 1e-5, 10);
  double prev = 1e9;
  for (std::size_t ranks : {1u, 4u, 16u, 64u}) {
    const VirtualCluster cluster(ranks, CommModel{});
    const auto phase = cluster.price_local_update(data.seconds, data.vars);
    EXPECT_LT(phase.compute_seconds, prev);
    prev = phase.compute_seconds;
  }
}

TEST(VirtualClusterTest, CommunicationGrowsWithRanks) {
  // Fig. 1(c): more CPUs -> more aggregator traffic (per-rank latencies).
  const TestData data(1000, 1e-5, 10);
  double prev = 0.0;
  for (std::size_t ranks : {1u, 4u, 16u, 64u}) {
    const VirtualCluster cluster(ranks, CommModel{});
    const auto phase = cluster.price_local_update(data.seconds, data.vars);
    EXPECT_GT(phase.communication_seconds, prev);
    prev = phase.communication_seconds;
  }
}

TEST(VirtualClusterTest, OneRankComputeEqualsSerialSum) {
  const TestData data(100, 2e-5, 8);
  const VirtualCluster cluster(1, CommModel{});
  const auto phase = cluster.price_local_update(data.seconds, data.vars);
  EXPECT_NEAR(phase.compute_seconds, 100 * 2e-5, 1e-12);
}

TEST(VirtualClusterTest, TotalHasSweetSpot) {
  // With compute ~ 1/N and comm ~ N, some interior N minimizes the total —
  // the crossover structure of Fig. 1(a).
  const TestData data(20000, 5e-6, 10);
  CommModel comm;
  comm.latency_s = 1e-4;
  std::vector<double> totals;
  for (std::size_t ranks : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const VirtualCluster cluster(ranks, comm);
    totals.push_back(
        cluster.price_local_update(data.seconds, data.vars).total());
  }
  const auto best = std::min_element(totals.begin(), totals.end());
  EXPECT_NE(best, totals.begin());
  EXPECT_NE(best, totals.end() - 1);
}

TEST(VirtualClusterTest, GpuRanksAddStagingCost) {
  const TestData data(500, 1e-5, 12);
  const VirtualCluster plain(8, CommModel{});
  const VirtualCluster gpu(8, CommModel{}, /*gpu_ranks=*/true);
  const auto p = plain.price_local_update(data.seconds, data.vars);
  const auto g = gpu.price_local_update(data.seconds, data.vars);
  EXPECT_EQ(p.staging_seconds, 0.0);
  EXPECT_GT(g.staging_seconds, 0.0);
  EXPECT_GT(g.total(), p.total());
  EXPECT_EQ(g.compute_seconds, p.compute_seconds);
}

TEST(VirtualClusterTest, ExplicitPartitionIsRespected) {
  std::vector<double> seconds = {1.0, 1.0, 10.0};
  std::vector<std::size_t> vars = {1, 1, 1};
  const VirtualCluster cluster(2, CommModel{});
  // Heavy component isolated: makespan 2.0.
  Partition balanced = {{0, 1}, {2}};
  EXPECT_NEAR(cluster.price_local_update(balanced, seconds, vars)
                  .compute_seconds,
              10.0, 1e-12);
  // Heavy component with a light one: makespan 11.
  Partition skewed = {{0}, {1, 2}};
  EXPECT_NEAR(
      cluster.price_local_update(skewed, seconds, vars).compute_seconds,
      11.0, 1e-12);
}

TEST(VirtualClusterTest, SizeMismatchThrows) {
  const VirtualCluster cluster(2, CommModel{});
  std::vector<double> seconds(3, 1.0);
  std::vector<std::size_t> vars(2, 1);
  EXPECT_THROW(cluster.price_local_update(seconds, vars),
               std::invalid_argument);
}

TEST(VirtualClusterTest, ZeroRanksThrows) {
  EXPECT_THROW(VirtualCluster(0, CommModel{}), std::invalid_argument);
}

}  // namespace
}  // namespace dopf::runtime
