/// The benchmark ADMM reproduces the paper's comparison configuration: the
/// solver-free extensions (relaxation, quantization, adaptive rho) must not
/// change its behaviour.

#include <gtest/gtest.h>

#include "baseline/benchmark_admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"

namespace dopf::baseline {
namespace {

TEST(BaselineOptionsTest, ExtensionsAreIgnored) {
  const auto net = dopf::feeders::ieee13();
  const auto problem = dopf::opf::decompose(net);

  dopf::core::AdmmOptions plain;
  plain.max_iterations = 40;
  plain.check_every = 100;

  dopf::core::AdmmOptions exotic = plain;
  exotic.relaxation = 1.7;
  exotic.quantize_bits = 12;
  exotic.adaptive_rho = true;

  BenchmarkAdmm a(problem, plain);
  BenchmarkAdmm b(problem, exotic);
  const auto ra = a.solve();
  const auto rb = b.solve();
  ASSERT_EQ(ra.x.size(), rb.x.size());
  for (std::size_t i = 0; i < ra.x.size(); ++i) {
    EXPECT_EQ(ra.x[i], rb.x[i]);
  }
}

TEST(BaselineOptionsTest, RhoChangesTrajectory) {
  const auto net = dopf::feeders::ieee13();
  const auto problem = dopf::opf::decompose(net);
  dopf::core::AdmmOptions opt;
  opt.max_iterations = 40;
  opt.check_every = 100;
  BenchmarkAdmm a(problem, opt);
  opt.rho = 10.0;
  BenchmarkAdmm b(problem, opt);
  const auto ra = a.solve();
  const auto rb = b.solve();
  bool differs = false;
  for (std::size_t i = 0; i < ra.x.size() && !differs; ++i) {
    differs = ra.x[i] != rb.x[i];
  }
  EXPECT_TRUE(differs);
}

TEST(BaselineOptionsTest, TighterQpToleranceCostsTime) {
  const auto net = dopf::feeders::ieee13();
  const auto problem = dopf::opf::decompose(net);
  dopf::core::AdmmOptions opt;
  opt.max_iterations = 20;
  opt.check_every = 100;

  dopf::solver::BoxQpOptions loose;
  loose.tol = 1e-6;
  dopf::solver::BoxQpOptions tight;
  tight.tol = 1e-12;
  BenchmarkAdmm a(problem, opt, loose);
  BenchmarkAdmm b(problem, opt, tight);
  a.solve();
  b.solve();
  EXPECT_LE(a.total_newton_iterations(), b.total_newton_iterations());
}

}  // namespace
}  // namespace dopf::baseline
