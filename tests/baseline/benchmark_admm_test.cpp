#include "baseline/benchmark_admm.hpp"

#include <gtest/gtest.h>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "solver/reference.hpp"

namespace dopf::baseline {
namespace {

using dopf::core::AdmmOptions;
using dopf::core::AdmmResult;

struct Fixture {
  dopf::network::Network net = dopf::feeders::ieee13();
  dopf::opf::OpfModel model = dopf::opf::build_model(net);
  dopf::opf::DistributedProblem problem = dopf::opf::decompose(net, model);
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(BenchmarkAdmmTest, ConvergesOnIeee13) {
  AdmmOptions opt;  // paper defaults
  BenchmarkAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  ASSERT_TRUE(res.converged);
  // Paper Table V: 1064 iterations for IEEE13 — same order of magnitude.
  EXPECT_GT(res.iterations, 50);
  EXPECT_LT(res.iterations, 30000);
}

TEST(BenchmarkAdmmTest, AgreesWithSolverFreeSolution) {
  AdmmOptions opt;
  opt.eps_rel = 1e-5;
  opt.max_iterations = 200000;
  BenchmarkAdmm benchmark(fixture().problem, opt);
  dopf::core::SolverFreeAdmm ours(fixture().problem, opt);
  const AdmmResult rb = benchmark.solve();
  const AdmmResult ro = ours.solve();
  ASSERT_TRUE(rb.converged);
  ASSERT_TRUE(ro.converged);
  EXPECT_NEAR(rb.objective, ro.objective,
              1e-3 * (1.0 + std::abs(ro.objective)));
}

TEST(BenchmarkAdmmTest, ReachesReferenceOptimum) {
  AdmmOptions opt;
  opt.eps_rel = 1e-5;
  opt.max_iterations = 200000;
  BenchmarkAdmm admm(fixture().problem, opt);
  const AdmmResult res = admm.solve();
  ASSERT_TRUE(res.converged);
  const auto ref = dopf::solver::reference_solve(fixture().model);
  EXPECT_NEAR(res.objective, ref.objective,
              1e-3 * (1.0 + std::abs(ref.objective)));
  EXPECT_LT(fixture().model.equation_residual(res.x), 1e-3);
}

TEST(BenchmarkAdmmTest, LocalIterateRespectsBoundsAndEqualities) {
  // Model (8): the *local* iterates carry the bounds.
  AdmmOptions opt;
  BenchmarkAdmm admm(fixture().problem, opt);
  admm.global_update();
  admm.local_update();
  const auto z = admm.z();
  const auto& problem = fixture().problem;
  for (std::size_t s = 0; s < problem.num_components(); ++s) {
    const auto& comp = problem.components[s];
    const double* zs = z.data() + admm.offset(s);
    for (std::size_t j = 0; j < comp.num_vars(); ++j) {
      EXPECT_GE(zs[j], problem.lb[comp.global[j]] - 1e-7);
      EXPECT_LE(zs[j], problem.ub[comp.global[j]] + 1e-7);
    }
    for (std::size_t r = 0; r < comp.num_rows(); ++r) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < comp.num_vars(); ++j) {
        lhs += comp.a(r, j) * zs[j];
      }
      EXPECT_NEAR(lhs, comp.b[r], 1e-6) << comp.name;
    }
  }
}

TEST(BenchmarkAdmmTest, GlobalUpdateIsUnclipped) {
  // The benchmark's xhat may leave the box (bounds live in the
  // subproblems); verify it does so at least once early in the run, which
  // distinguishes it from the solver-free global update.
  AdmmOptions opt;
  BenchmarkAdmm admm(fixture().problem, opt);
  const auto& problem = fixture().problem;
  bool escaped = false;
  for (int t = 0; t < 200 && !escaped; ++t) {
    admm.global_update();
    const auto x = admm.x();
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] < problem.lb[i] - 1e-12 || x[i] > problem.ub[i] + 1e-12) {
        escaped = true;
        break;
      }
    }
    admm.local_update();
    admm.dual_update();
  }
  EXPECT_TRUE(escaped);
}

TEST(BenchmarkAdmmTest, InnerSolverCountersAccumulate) {
  AdmmOptions opt;
  opt.max_iterations = 20;
  BenchmarkAdmm admm(fixture().problem, opt);
  admm.solve();
  EXPECT_GT(admm.total_newton_iterations(), 0);
}

TEST(BenchmarkAdmmTest, ResetReproducesRun) {
  AdmmOptions opt;
  opt.max_iterations = 30;
  BenchmarkAdmm admm(fixture().problem, opt);
  const AdmmResult a = admm.solve();
  admm.reset();
  const AdmmResult b = admm.solve();
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_NEAR(a.x[i], b.x[i], 1e-12);
  }
}

TEST(BenchmarkAdmmTest, PerIterationLocalUpdateCostsExceedSolverFree) {
  // The paper's headline: QP solves per component cost far more than the
  // closed-form matvec. Compare measured local-update time over the same
  // number of iterations.
  AdmmOptions opt;
  opt.max_iterations = 30;
  BenchmarkAdmm benchmark(fixture().problem, opt);
  dopf::core::SolverFreeAdmm ours(fixture().problem, opt);
  const AdmmResult rb = benchmark.solve();
  const AdmmResult ro = ours.solve();
  EXPECT_GT(rb.timing.local_update, 2.0 * ro.timing.local_update);
}

}  // namespace
}  // namespace dopf::baseline
