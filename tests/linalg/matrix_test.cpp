#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dopf::linalg {
namespace {

TEST(MatrixTest, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, SizedConstructorZeroInitializes) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, InitializerListLayout) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(2, 0), 5.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, IdentityHasUnitDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposeSwapsIndices) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t(0, 1), 4.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(multiply(a, b), std::invalid_argument);
}

TEST(MatrixTest, MultiplyAbtEqualsExplicitTranspose) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix b{{7.0, 8.0, 9.0}, {1.0, 0.0, -1.0}};
  const Matrix expected = multiply(a, b.transposed());
  EXPECT_TRUE(multiply_abt(a, b).approx_equal(expected, 1e-14));
}

TEST(MatrixTest, MultiplyAtbEqualsExplicitTranspose) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix b{{7.0}, {8.0}, {9.0}};
  const Matrix expected = multiply(a.transposed(), b);
  EXPECT_TRUE(multiply_atb(a, b).approx_equal(expected, 1e-14));
}

TEST(MatrixTest, GramAatIsSymmetricPsd) {
  Matrix a{{1.0, 2.0, 0.5}, {-1.0, 0.0, 2.0}};
  const Matrix g = gram_aat(a);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.cols(), 2u);
  EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
  EXPECT_GT(g(0, 0), 0.0);
  EXPECT_GT(g(1, 1), 0.0);
}

TEST(MatrixTest, MatVecAndTransposeMatVec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> x = {1.0, -1.0};
  const std::vector<double> y = multiply(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_EQ(y[0], -1.0);
  EXPECT_EQ(y[1], -1.0);
  EXPECT_EQ(y[2], -1.0);

  const std::vector<double> z = {1.0, 1.0, 1.0};
  const std::vector<double> aty = multiply_transpose(a, z);
  ASSERT_EQ(aty.size(), 2u);
  EXPECT_EQ(aty[0], 9.0);
  EXPECT_EQ(aty[1], 12.0);
}

TEST(MatrixTest, MultiplyAddAccumulates) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {10.0, 10.0};
  multiply_add(a, x, -1.0, y);
  EXPECT_EQ(y[0], 8.0);
  EXPECT_EQ(y[1], 7.0);
}

TEST(MatrixTest, AdditionAndSubtraction) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  const Matrix diff = a - b;
  EXPECT_EQ(sum(0, 0), 5.0);
  EXPECT_EQ(sum(1, 1), 5.0);
  EXPECT_EQ(diff(0, 0), -3.0);
  EXPECT_EQ(diff(1, 1), 3.0);
}

TEST(MatrixTest, ApproxEqualRespectsTolerance) {
  Matrix a{{1.0}};
  Matrix b{{1.0 + 1e-9}};
  EXPECT_TRUE(a.approx_equal(b, 1e-8));
  EXPECT_FALSE(a.approx_equal(b, 1e-10));
  EXPECT_FALSE(a.approx_equal(Matrix(2, 1), 1.0));
}

TEST(MatrixTest, RowSpanAliasesStorage) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  auto row = m.row(1);
  row[0] = 30.0;
  EXPECT_EQ(m(1, 0), 30.0);
}

}  // namespace
}  // namespace dopf::linalg
