#include "linalg/affine_projector.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"

namespace dopf::linalg {
namespace {

TEST(AffineProjectorTest, ProjectionLandsOnConstraint) {
  Matrix a{{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}};
  const std::vector<double> b = {1.0, 2.0};
  const AffineProjector proj(a, b);
  const std::vector<double> y = {5.0, -3.0, 0.7};
  const std::vector<double> x = proj.project(y);
  const std::vector<double> ax = multiply(a, x);
  EXPECT_NEAR(ax[0], 1.0, 1e-12);
  EXPECT_NEAR(ax[1], 2.0, 1e-12);
}

TEST(AffineProjectorTest, FixedPointOnConstraintSet) {
  Matrix a{{1.0, 2.0}};
  const std::vector<double> b = {4.0};
  const AffineProjector proj(a, b);
  // (0, 2) satisfies the constraint; projecting it must be the identity.
  const std::vector<double> x = proj.project(std::vector<double>{0.0, 2.0});
  EXPECT_NEAR(x[0], 0.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(AffineProjectorTest, ResidualIsOrthogonalToRowSpace) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(3, 7);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 7; ++j) a(i, j) = dist(rng);
  }
  std::vector<double> b(3);
  for (double& v : b) v = dist(rng);
  const AffineProjector proj(a, b);

  std::vector<double> y(7);
  for (double& v : y) v = dist(rng);
  const std::vector<double> x = proj.project(y);
  // y - x must be in the row space: (y - x) orthogonal to the null space,
  // equivalently P(y - x + x0) == x0 for any feasible x0. Cheaper check:
  // project the displaced point again — projection is idempotent.
  const std::vector<double> x2 = proj.project(x);
  for (std::size_t j = 0; j < 7; ++j) EXPECT_NEAR(x2[j], x[j], 1e-11);
  // And x minimizes distance: perturbing along the constraint set cannot
  // get closer to y. Take a null-space direction via projecting a random
  // direction difference.
  std::vector<double> d(7);
  for (double& v : d) v = dist(rng);
  const std::vector<double> xd = proj.project(add(x, d));
  const double dist_x = distance2(x, y);
  const double dist_xd = distance2(xd, y);
  EXPECT_GE(dist_xd, dist_x - 1e-12);
}

TEST(AffineProjectorTest, PaperFormMatchesProjectionForm) {
  // (15a): x = (1/rho) Abar d + bbar with d = -rho v - lambda must equal
  // project(v + lambda / rho).
  Matrix a{{1.0, 0.0, 2.0}, {0.0, 1.0, -1.0}};
  const std::vector<double> b = {1.0, 0.5};
  const AffineProjector proj(a, b);
  const double rho = 100.0;
  const std::vector<double> v = {0.3, -0.2, 0.9};
  const std::vector<double> lambda = {2.0, -1.0, 0.5};

  std::vector<double> d(3), y(3);
  for (int j = 0; j < 3; ++j) {
    d[j] = -rho * v[j] - lambda[j];
    y[j] = v[j] + lambda[j] / rho;
  }
  const std::vector<double> x_paper = proj.apply_paper_form(d, rho);
  const std::vector<double> x_proj = proj.project(y);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(x_paper[j], x_proj[j], 1e-12);
}

TEST(AffineProjectorTest, AbarDefinitionHolds) {
  // Abar = A^T (A A^T)^{-1} A - I, so Abar * y + y must lie in the row
  // space of A^T ... more directly: A * (Abar y) = A y - A y = 0? Check the
  // defining identity A (Abar + I) y = A y.
  Matrix a{{2.0, 1.0}, {0.0, 3.0}};
  const std::vector<double> b = {1.0, 1.0};
  const AffineProjector proj(a, b);
  const std::vector<double> y = {0.7, -1.3};
  std::vector<double> aby = multiply(proj.abar(), y);
  // (Abar + I) y = A^T (A A^T)^{-1} A y
  const std::vector<double> lhs = add(aby, y);
  // Since A is square and invertible here, A^T (A A^T)^{-1} A = I.
  EXPECT_NEAR(lhs[0], y[0], 1e-12);
  EXPECT_NEAR(lhs[1], y[1], 1e-12);
}

TEST(AffineProjectorTest, RankDeficientMatrixThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(AffineProjector(a, b), SingularMatrixError);
}

TEST(AffineProjectorTest, SizeMismatchThrows) {
  Matrix a(2, 3);
  const std::vector<double> b = {1.0};
  EXPECT_THROW(AffineProjector(a, b), std::invalid_argument);
}

class ProjectorRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(ProjectorRandomSweep, IdempotentAndFeasible) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  const std::size_t m = 2 + GetParam() % 4;
  const std::size_t n = m + 3;
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
  }
  std::vector<double> b(m);
  for (double& v : b) v = dist(rng);
  const AffineProjector proj(a, b);
  std::vector<double> y(n);
  for (double& v : y) v = dist(rng);
  const std::vector<double> x = proj.project(y);
  const std::vector<double> ax = multiply(a, x);
  for (std::size_t i = 0; i < m; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectorRandomSweep,
                         ::testing::Range(1, 12));

}  // namespace
}  // namespace dopf::linalg
