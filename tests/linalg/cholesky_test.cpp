#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dopf::linalg {
namespace {

Matrix random_spd(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
  }
  // A A^T + n I is SPD.
  Matrix spd = gram_aat(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(CholeskyTest, FactorsDiagonalMatrix) {
  Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  const Cholesky chol(a);
  EXPECT_DOUBLE_EQ(chol.lower()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(chol.lower()(1, 1), 3.0);
}

TEST(CholeskyTest, SolveRecoversKnownSolution) {
  const Matrix a = random_spd(8, 42);
  std::vector<double> x_true(8);
  for (std::size_t i = 0; i < 8; ++i) x_true[i] = static_cast<double>(i) - 3.0;
  const std::vector<double> b = multiply(a, x_true);
  const std::vector<double> x = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(CholeskyTest, LLtReconstructsInput) {
  const Matrix a = random_spd(6, 7);
  const Cholesky chol(a);
  const Matrix rebuilt = multiply_abt(chol.lower(), chol.lower());
  EXPECT_TRUE(rebuilt.approx_equal(a, 1e-10));
}

TEST(CholeskyTest, InverseTimesMatrixIsIdentity) {
  const Matrix a = random_spd(5, 99);
  const Matrix inv = Cholesky(a).inverse();
  EXPECT_TRUE(multiply(a, inv).approx_equal(Matrix::identity(5), 1e-9));
}

TEST(CholeskyTest, IndefiniteMatrixThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, SingularMatrixError);
}

TEST(CholeskyTest, SingularMatrixThrows) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW(Cholesky{a}, SingularMatrixError);
}

TEST(CholeskyTest, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(Cholesky{a}, std::invalid_argument);
}

TEST(CholeskyTest, SolveSizeMismatchThrows) {
  const Cholesky chol(Matrix{{1.0}});
  std::vector<double> wrong(3, 0.0);
  EXPECT_THROW(chol.solve(wrong), std::invalid_argument);
}

TEST(CholeskyTest, TryFactorMatchesThrowingConstructor) {
  const Matrix a = random_spd(7, 13);
  const auto chol = Cholesky::try_factor(a);
  ASSERT_TRUE(chol.has_value());
  EXPECT_TRUE(chol->lower().approx_equal(Cholesky(a).lower(), 0.0));
}

TEST(CholeskyTest, TryFactorFillsStatusOnSuccess) {
  CholeskyStatus status;
  const auto chol = Cholesky::try_factor(random_spd(4, 5), 1e-12, &status);
  ASSERT_TRUE(chol.has_value());
  EXPECT_TRUE(status.ok);
}

TEST(CholeskyTest, TryFactorIndefiniteReturnsPivotProvenance) {
  // SPD in the leading 1x1 block, indefinite overall: the failure must name
  // column 1 and report its (non-positive) pivot value instead of throwing.
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};
  CholeskyStatus status;
  const auto chol = Cholesky::try_factor(a, 1e-12, &status);
  EXPECT_FALSE(chol.has_value());
  EXPECT_FALSE(status.ok);
  EXPECT_EQ(status.pivot_index, 1u);
  EXPECT_LE(status.pivot_value, 1e-12);
}

TEST(CholeskyTest, TryFactorSingularReturnsNullopt) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(Cholesky::try_factor(a).has_value());
}

class CholeskySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizeSweep, RandomSpdRoundTrip) {
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, static_cast<unsigned>(1000 + n));
  std::vector<double> x_true(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::sin(double(i));
  const std::vector<double> x = Cholesky(a).solve(multiply(a, x_true));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 40));

}  // namespace
}  // namespace dopf::linalg
