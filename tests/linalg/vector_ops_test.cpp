#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dopf::linalg {
namespace {

TEST(VectorOpsTest, DotAndNorms) {
  const std::vector<double> x = {3.0, 4.0};
  const std::vector<double> y = {1.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(x, y), -1.0);
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(y), 1.0);
}

TEST(VectorOpsTest, DotSizeMismatchThrows) {
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(dot(x, y), std::invalid_argument);
}

TEST(VectorOpsTest, AxpyAndScale) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y[0], 12.0);
  EXPECT_EQ(y[1], 24.0);
  scale(y, 0.5);
  EXPECT_EQ(y[0], 6.0);
  EXPECT_EQ(y[1], 12.0);
}

TEST(VectorOpsTest, ClipProjectsIntoBox) {
  std::vector<double> x = {-2.0, 0.5, 7.0};
  const std::vector<double> lo = {0.0, 0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0, 1.0};
  clip(x, lo, hi);
  EXPECT_EQ(x[0], 0.0);
  EXPECT_EQ(x[1], 0.5);
  EXPECT_EQ(x[2], 1.0);
}

TEST(VectorOpsTest, ClipWithInfiniteBoundsIsIdentity) {
  std::vector<double> x = {-1e10, 1e10};
  const std::vector<double> lo = {-kInfinity, -kInfinity};
  const std::vector<double> hi = {kInfinity, kInfinity};
  clip(x, lo, hi);
  EXPECT_EQ(x[0], -1e10);
  EXPECT_EQ(x[1], 1e10);
}

TEST(VectorOpsTest, Distance2) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {4.0, 6.0};
  EXPECT_DOUBLE_EQ(distance2(x, y), 5.0);
}

TEST(VectorOpsTest, AddSubtract) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {3.0, 5.0};
  const auto s = add(x, y);
  const auto d = subtract(x, y);
  EXPECT_EQ(s[0], 4.0);
  EXPECT_EQ(s[1], 7.0);
  EXPECT_EQ(d[0], -2.0);
  EXPECT_EQ(d[1], -3.0);
}

TEST(VectorOpsTest, IsUnboundedSentinels) {
  EXPECT_TRUE(is_unbounded(kInfinity));
  EXPECT_TRUE(is_unbounded(-kInfinity));
  EXPECT_TRUE(is_unbounded(kInfinity * 2));
  EXPECT_FALSE(is_unbounded(1e6));
  EXPECT_FALSE(is_unbounded(0.0));
  EXPECT_FALSE(is_unbounded(-1e6));
}

TEST(VectorOpsTest, FillSetsEveryElement) {
  std::vector<double> x(5, 1.0);
  fill(x, -3.5);
  for (double v : x) EXPECT_EQ(v, -3.5);
}

}  // namespace
}  // namespace dopf::linalg
