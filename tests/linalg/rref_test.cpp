#include "linalg/rref.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/cholesky.hpp"

namespace dopf::linalg {
namespace {

TEST(RrefTest, FullRankSystemKeepsAllRows) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const RrefResult r = row_reduce(a, {5.0, 6.0});
  EXPECT_EQ(r.rank, 2u);
  EXPECT_FALSE(r.inconsistent);
  EXPECT_EQ(r.a.rows(), 2u);
}

TEST(RrefTest, DuplicateRowIsDropped) {
  Matrix a{{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}};
  const RrefResult r = row_reduce(a, {1.0, 2.0});
  EXPECT_EQ(r.rank, 1u);
  EXPECT_FALSE(r.inconsistent);
  EXPECT_EQ(r.a.rows(), 1u);
}

TEST(RrefTest, ContradictoryDuplicateIsInconsistent) {
  Matrix a{{1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}};
  const RrefResult r = row_reduce(a, {1.0, 3.0});
  EXPECT_EQ(r.rank, 1u);
  EXPECT_TRUE(r.inconsistent);
}

TEST(RrefTest, ZeroRowWithNonzeroRhsIsInconsistent) {
  Matrix a{{0.0, 0.0}, {1.0, 1.0}};
  const RrefResult r = row_reduce(a, {1.0, 2.0});
  EXPECT_TRUE(r.inconsistent);
  EXPECT_EQ(r.rank, 1u);
}

TEST(RrefTest, SolutionSetIsPreserved) {
  // x + y = 3; 2x + 2y = 6 (dependent); x - y = 1  =>  x = 2, y = 1.
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {1.0, -1.0}};
  const RrefResult r = row_reduce(a, {3.0, 6.0, 1.0});
  EXPECT_EQ(r.rank, 2u);
  EXPECT_FALSE(r.inconsistent);
  // The reduced system must still be solved by (2, 1).
  const std::vector<double> x = {2.0, 1.0};
  const std::vector<double> ax = multiply(r.a, x);
  for (std::size_t i = 0; i < r.rank; ++i) EXPECT_NEAR(ax[i], r.b[i], 1e-12);
}

TEST(RrefTest, ReducedMatrixHasFullRowRank) {
  // After reduction A A^T must be SPD (Cholesky succeeds) — the property
  // the local update (15) needs.
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(6, 4);  // rank <= 4 => at least 2 dependent rows
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = dist(rng);
  }
  // Make row 5 = row 0 + row 1 to force a dependency; rhs consistently.
  std::vector<double> b(6, 0.0);
  std::vector<double> x_ref = {1.0, -1.0, 0.5, 2.0};
  for (std::size_t j = 0; j < 4; ++j) a(5, j) = a(0, j) + a(1, j);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b[i] += a(i, j) * x_ref[j];
  }
  const RrefResult r = row_reduce(a, b);
  EXPECT_FALSE(r.inconsistent);
  EXPECT_LE(r.rank, 4u);
  EXPECT_NO_THROW(Cholesky{gram_aat(r.a)});
}

TEST(RrefTest, PivotColumnsAreStrictlyIncreasing) {
  Matrix a{{0.0, 1.0, 2.0}, {1.0, 0.0, 1.0}};
  const RrefResult r = row_reduce(a, {1.0, 1.0});
  ASSERT_EQ(r.pivot_cols.size(), 2u);
  EXPECT_LT(r.pivot_cols[0], r.pivot_cols[1]);
}

TEST(RrefTest, ZeroMatrixZeroRhsHasRankZero) {
  Matrix a(3, 2);
  const RrefResult r = row_reduce(a, {0.0, 0.0, 0.0});
  EXPECT_EQ(r.rank, 0u);
  EXPECT_FALSE(r.inconsistent);
  EXPECT_EQ(r.a.rows(), 0u);
}

TEST(RrefTest, RhsSizeMismatchThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(row_reduce(a, {1.0}), std::invalid_argument);
}

TEST(RrefTest, PivotingHandlesTinyLeadingEntry) {
  // Without pivoting the 1e-14 leading entry would poison the elimination.
  Matrix a{{1e-14, 1.0}, {1.0, 1.0}};
  const RrefResult r = row_reduce(a, {1.0, 2.0});
  EXPECT_EQ(r.rank, 2u);
  // Solve the reduced 2x2 system and compare with the exact solution
  // x ~ 1, y ~ 1.
  const std::vector<double> x = {1.0, 1.0};
  const std::vector<double> ax = multiply(r.a, x);
  EXPECT_NEAR(ax[0], r.b[0], 1e-9);
  EXPECT_NEAR(ax[1], r.b[1], 1e-9);
}

}  // namespace
}  // namespace dopf::linalg
