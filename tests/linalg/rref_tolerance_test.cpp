// Tolerance edge cases for the RREF preprocessing (Sec. IV-B): rows that
// are dependent up to a perturbation of 1e-8 / 1e-12 / 1e-15 must land on
// the intended side of the pivot tolerance, and the projector built on the
// reduced block must satisfy its constraints — including when the Gram
// matrix only exists after a Tikhonov ridge.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/affine_projector.hpp"
#include "linalg/rref.hpp"

namespace dopf::linalg {
namespace {

// [A | b] with row 2 = row 0 + eps * e3 and a consistent rhs; the default
// pivot tolerance is 1e-10 relative to max|A| = 1.
RrefResult reduce_perturbed(double eps, double rhs_offset = 0.0) {
  Matrix a{{1.0, 1.0, 0.0, 0.0},
           {0.0, 0.0, 1.0, 1.0},
           {1.0, 1.0, 0.0, eps}};
  const std::vector<double> x_ref = {1.0, 2.0, -1.0, 0.5};
  std::vector<double> b(3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) b[i] += a(i, j) * x_ref[j];
  }
  b[2] += rhs_offset;
  return row_reduce(a, b);
}

void expect_projector_feasible(const RrefResult& r, double tol) {
  const auto proj = AffineProjector::try_build(r.a, r.b);
  ASSERT_TRUE(proj.has_value());
  std::vector<double> y(r.a.cols(), 0.3);  // arbitrary anchor point
  const std::vector<double> x = proj->project(y);
  const std::vector<double> ax = multiply(r.a, x);
  for (std::size_t i = 0; i < r.a.rows(); ++i) {
    EXPECT_NEAR(ax[i], r.b[i], tol) << "row " << i;
  }
}

TEST(RrefToleranceTest, Perturbation1e8IsAboveToleranceAndKept) {
  const RrefResult r = reduce_perturbed(1e-8);
  EXPECT_EQ(r.rank, 3u);
  EXPECT_FALSE(r.inconsistent);
  expect_projector_feasible(r, 1e-6);
}

TEST(RrefToleranceTest, Perturbation1e12IsBelowToleranceAndDropped) {
  const RrefResult r = reduce_perturbed(1e-12);
  EXPECT_EQ(r.rank, 2u);
  EXPECT_FALSE(r.inconsistent);
  expect_projector_feasible(r, 1e-9);
}

TEST(RrefToleranceTest, Perturbation1e15VanishesEntirely) {
  const RrefResult r = reduce_perturbed(1e-15);
  EXPECT_EQ(r.rank, 2u);
  EXPECT_FALSE(r.inconsistent);
  expect_projector_feasible(r, 1e-9);
}

TEST(RrefToleranceTest, RhsResidualAboveToleranceIsInconsistent) {
  // The dependent row is dropped, but its rhs disagrees by 1e-8 — above the
  // scaled tolerance, so the system must be flagged inconsistent.
  const RrefResult r = reduce_perturbed(1e-12, /*rhs_offset=*/1e-8);
  EXPECT_EQ(r.rank, 2u);
  EXPECT_TRUE(r.inconsistent);
}

TEST(RrefToleranceTest, RhsResidualBelowToleranceIsAbsorbed) {
  // A 1e-12 rhs disagreement on a dropped row is numerical noise, not an
  // infeasibility: the reduction must absorb it silently.
  const RrefResult r = reduce_perturbed(1e-12, /*rhs_offset=*/1e-12);
  EXPECT_EQ(r.rank, 2u);
  EXPECT_FALSE(r.inconsistent);
}

TEST(RrefToleranceTest, KeptNearDependentRowStillYieldsUsableProjector) {
  // eps = 1e-8 survives the reduction, so the Gram matrix carries a small
  // eigenvalue ~ eps^2-ish; the exact projector must still exist and its
  // output must satisfy the constraints to a usable accuracy.
  const RrefResult r = reduce_perturbed(1e-8);
  ASSERT_EQ(r.rank, 3u);
  ProjectorStatus status;
  const auto proj = AffineProjector::try_build(r.a, r.b, {}, &status);
  ASSERT_TRUE(proj.has_value());
  EXPECT_TRUE(status.ok);
  EXPECT_EQ(status.ridge, 0.0);
}

TEST(RrefToleranceTest, GramFailureWithoutRegularizationReportsPivot) {
  // Bypass RREF: rows at angle ~1e-7 pass any row-level tolerance but their
  // Gram matrix has lambda_min ~ 1e-14 < chol_tol, so the strict build must
  // refuse and name the offending pivot.
  Matrix a{{1.0, 0.0}, {1.0, 1e-7}};
  const std::vector<double> b = {1.0, 1.0};
  ProjectorStatus status;
  const auto proj = AffineProjector::try_build(a, b, {}, &status);
  EXPECT_FALSE(proj.has_value());
  EXPECT_FALSE(status.ok);
  EXPECT_EQ(status.pivot_index, 1u);
}

TEST(RrefToleranceTest, RidgeRemediationYieldsBoundedResidual) {
  Matrix a{{1.0, 0.0}, {1.0, 1e-7}};
  const std::vector<double> b = {1.0, 1.0};
  ProjectorOptions options;
  options.auto_regularize = true;
  ProjectorStatus status;
  const auto proj = AffineProjector::try_build(a, b, options, &status);
  ASSERT_TRUE(proj.has_value());
  EXPECT_TRUE(status.ok);
  EXPECT_GT(status.ridge, 0.0);
  EXPECT_DOUBLE_EQ(proj->ridge(), status.ridge);
  // The ridged projector is a perturbation of the exact one: both rows must
  // still be satisfied to an accuracy commensurate with the reported ridge
  // (far looser than machine precision, far tighter than O(1)).
  const std::vector<double> origin(2, 0.0);
  const std::vector<double> x = proj->project(origin);
  const std::vector<double> ax = multiply(a, x);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-3) << "row " << i;
  }
}

}  // namespace
}  // namespace dopf::linalg
