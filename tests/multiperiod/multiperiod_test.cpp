#include "multiperiod/multiperiod.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"

namespace dopf::multiperiod {
namespace {

using dopf::core::AdmmOptions;
using dopf::core::SolverFreeAdmm;
using dopf::network::Network;

MultiPeriodSpec small_spec(int periods) {
  MultiPeriodSpec spec;
  spec.periods = periods;
  spec.load_scale.assign(periods, 1.0);
  spec.price.assign(periods, 1.0);
  return spec;
}

Storage battery_at(int bus) {
  Storage st;
  st.name = "batt";
  st.bus = bus;
  st.phases = dopf::network::PhaseSet::abc();
  st.charge_max = 0.05;
  st.discharge_max = 0.05;
  st.energy_max = 0.3;
  st.energy_init = 0.15;
  st.efficiency = 0.9;
  return st;
}

TEST(MultiPeriodTest, StackedSizesScaleWithPeriods) {
  const Network net = dopf::feeders::ieee13();
  const auto one = build_multiperiod(net, small_spec(1));
  const auto four = build_multiperiod(net, small_spec(4));
  EXPECT_EQ(four.problem.num_vars, 4 * one.problem.num_vars);
  EXPECT_EQ(four.problem.num_components(), 4 * one.problem.num_components());
  EXPECT_EQ(four.period_offset.size(), 4u);
  EXPECT_EQ(four.period_offset[1], one.problem.num_vars);
}

TEST(MultiPeriodTest, StorageAddsSocVarsAndOneComponent) {
  const Network net = dopf::feeders::ieee13();
  MultiPeriodSpec spec = small_spec(6);
  spec.storages.push_back(battery_at(4));  // bus 671
  const auto plain = build_multiperiod(net, small_spec(6));
  const auto with = build_multiperiod(net, spec);
  EXPECT_EQ(with.problem.num_components(),
            plain.problem.num_components() + 1);
  // 6 SOC variables + 6 periods x 3 phases x 2 (chg/dis) power + q vars.
  EXPECT_GT(with.problem.num_vars, plain.problem.num_vars + 6);
  const auto& sv = with.storage_vars[0];
  for (int t = 0; t < 6; ++t) {
    EXPECT_GE(sv.soc[t], 0);
    EXPECT_GE(sv.charge[t][0], 0);
    EXPECT_GE(sv.discharge[t][0], 0);
  }
}

TEST(MultiPeriodTest, FlatPricesLeaveStorageIdle) {
  // With a flat price and lossy conversion, cycling the battery can only
  // waste energy; the optimum keeps it (nearly) idle.
  const Network net = dopf::feeders::ieee13();
  MultiPeriodSpec spec = small_spec(4);
  spec.storages.push_back(battery_at(4));
  const auto mp = build_multiperiod(net, spec);

  AdmmOptions opt;
  opt.eps_rel = 1e-5;
  opt.max_iterations = 300000;
  opt.relaxation = 1.6;
  SolverFreeAdmm admm(mp.problem, opt);
  const auto res = admm.solve();
  ASSERT_TRUE(res.converged);
  for (int t = 0; t < 4; ++t) {
    EXPECT_NEAR(mp.net_injection(res.x, 0, t), 0.0, 5e-3);
  }
}

TEST(MultiPeriodTest, PriceSpreadTriggersArbitrage) {
  // Cheap nights, expensive evenings: the battery must charge when cheap
  // and discharge when expensive.
  const Network net = dopf::feeders::ieee13();
  MultiPeriodSpec spec = small_spec(4);
  spec.price = {0.2, 0.2, 3.0, 3.0};
  spec.storages.push_back(battery_at(4));
  spec.storages[0].energy_init = 0.0;
  spec.storages[0].sustain = false;
  const auto mp = build_multiperiod(net, spec);

  AdmmOptions opt;
  opt.eps_rel = 1e-5;
  opt.max_iterations = 300000;
  opt.relaxation = 1.6;
  SolverFreeAdmm admm(mp.problem, opt);
  const auto res = admm.solve();
  ASSERT_TRUE(res.converged);

  const double early = mp.net_injection(res.x, 0, 0) +
                       mp.net_injection(res.x, 0, 1);
  const double late = mp.net_injection(res.x, 0, 2) +
                      mp.net_injection(res.x, 0, 3);
  EXPECT_LT(early, -0.05);  // net charging while cheap
  EXPECT_GT(late, 0.05);    // net discharging while expensive
}

TEST(MultiPeriodTest, SocObeysDynamicsAndBounds) {
  const Network net = dopf::feeders::ieee13();
  MultiPeriodSpec spec = small_spec(5);
  spec.price = {0.5, 2.0, 0.5, 2.0, 1.0};
  spec.storages.push_back(battery_at(4));
  const auto mp = build_multiperiod(net, spec);

  AdmmOptions opt;
  opt.eps_rel = 1e-5;
  opt.max_iterations = 300000;
  opt.relaxation = 1.6;
  SolverFreeAdmm admm(mp.problem, opt);
  const auto res = admm.solve();
  ASSERT_TRUE(res.converged);

  const Storage& st = spec.storages[0];
  double prev = st.energy_init;
  for (int t = 0; t < spec.periods; ++t) {
    const double soc = mp.soc(res.x, 0, t);
    EXPECT_GE(soc, -1e-6);
    EXPECT_LE(soc, st.energy_max + 1e-6);
    // e_t = e_{t-1} - h*(dis + eta*chg); recompute from the power vars.
    double dis = 0.0, chg = 0.0;
    for (int idx : mp.storage_vars[0].discharge[t]) {
      if (idx >= 0) dis += res.x[idx];
    }
    for (int idx : mp.storage_vars[0].charge[t]) {
      if (idx >= 0) chg += res.x[idx];
    }
    EXPECT_NEAR(soc, prev - mp.period_hours * (dis + st.efficiency * chg),
                2e-3);
    prev = soc;
  }
  // Sustainability bound honoured.
  EXPECT_GE(mp.soc(res.x, 0, spec.periods - 1), st.energy_init - 1e-6);
}

TEST(MultiPeriodTest, LoadScaleShiftsPerPeriodDemand) {
  const Network net = dopf::feeders::ieee13();
  MultiPeriodSpec spec = small_spec(2);
  spec.load_scale = {0.5, 1.5};
  const auto mp = build_multiperiod(net, spec);
  double p0 = 0.0, p1 = 0.0;
  for (const auto& l : mp.period_nets[0].loads()) {
    for (auto p : l.phases.phases()) p0 += l.p_ref[p];
  }
  for (const auto& l : mp.period_nets[1].loads()) {
    for (auto p : l.phases.phases()) p1 += l.p_ref[p];
  }
  EXPECT_NEAR(p1, 3.0 * p0, 1e-12);
}

TEST(MultiPeriodTest, InvalidSpecsThrow) {
  const Network net = dopf::feeders::ieee13();
  MultiPeriodSpec bad = small_spec(0);
  EXPECT_THROW(build_multiperiod(net, bad), std::invalid_argument);

  bad = small_spec(3);
  bad.load_scale = {1.0};  // wrong length
  EXPECT_THROW(build_multiperiod(net, bad), std::invalid_argument);

  bad = small_spec(2);
  bad.storages.push_back(battery_at(999));
  EXPECT_THROW(build_multiperiod(net, bad), std::invalid_argument);

  bad = small_spec(2);
  bad.storages.push_back(battery_at(4));
  bad.storages[0].energy_init = 99.0;  // > energy_max
  EXPECT_THROW(build_multiperiod(net, bad), std::invalid_argument);
}

TEST(MultiPeriodTest, EveryVariableCovered) {
  const Network net = dopf::feeders::ieee13();
  MultiPeriodSpec spec = small_spec(3);
  spec.storages.push_back(battery_at(4));
  const auto mp = build_multiperiod(net, spec);
  for (int c : mp.problem.copy_count) EXPECT_GE(c, 1);
}

}  // namespace
}  // namespace dopf::multiperiod
