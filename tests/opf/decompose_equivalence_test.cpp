/// Coefficient-level equivalence between the centralized model (7) and the
/// distributed model (9): with leaf-merge and row-reduction disabled, the
/// union of the component blocks (mapped through B_s) must be exactly the
/// centralized equation set — the equivalence the paper asserts between (8),
/// (9) and (7).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "feeders/ieee13.hpp"
#include "feeders/synthetic.hpp"
#include "linalg/affine_projector.hpp"
#include "opf/decompose.hpp"

namespace dopf::opf {
namespace {

// A row in canonical form: rhs followed by sorted (var, coeff) pairs.
using Row = std::pair<double, std::vector<std::pair<int, double>>>;

Row canonical(double rhs, std::map<int, double> terms) {
  std::vector<std::pair<int, double>> sorted(terms.begin(), terms.end());
  return {rhs, std::move(sorted)};
}

std::vector<Row> rows_of_model(const OpfModel& model) {
  std::vector<Row> rows;
  for (const Equation& eq : model.equations) {
    std::map<int, double> terms;
    for (const auto& [var, coeff] : eq.terms) terms[var] += coeff;
    rows.push_back(canonical(eq.rhs, std::move(terms)));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<Row> rows_of_problem(const DistributedProblem& p) {
  std::vector<Row> rows;
  for (const Component& comp : p.components) {
    for (std::size_t r = 0; r < comp.num_rows(); ++r) {
      std::map<int, double> terms;
      for (std::size_t j = 0; j < comp.num_vars(); ++j) {
        const double coeff = comp.a(r, j);
        if (coeff != 0.0) terms[comp.global[j]] += coeff;
      }
      rows.push_back(canonical(comp.b[r], std::move(terms)));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

void expect_same_rows(const OpfModel& model, const DistributedProblem& p) {
  const auto a = rows_of_model(model);
  const auto b = rows_of_problem(p);
  ASSERT_EQ(a.size(), b.size());
  // Canonically sorted rows with exact coefficient equality: the
  // decomposition copies coefficients, it must not perturb them.
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r], b[r]) << "row " << r;
  }
}

TEST(DecomposeEquivalenceTest, Ieee13UnmergedUnreduced) {
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  DecomposeOptions opts;
  opts.merge_leaves = false;
  opts.row_reduce = false;
  expect_same_rows(model, decompose(net, model, opts));
}

TEST(DecomposeEquivalenceTest, Ieee13MergedUnreduced) {
  // Leaf merging only regroups equations; the row set must be unchanged.
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  DecomposeOptions opts;
  opts.row_reduce = false;
  expect_same_rows(model, decompose(net, model, opts));
}

TEST(DecomposeEquivalenceTest, SyntheticUnmergedUnreduced) {
  dopf::feeders::SyntheticSpec spec;
  spec.num_buses = 40;
  spec.num_leaves = 12;
  spec.num_extra_lines = 4;
  spec.seed = 17;
  const auto net = dopf::feeders::synthetic_feeder(spec);
  const OpfModel model = build_model(net);
  DecomposeOptions opts;
  opts.merge_leaves = false;
  opts.row_reduce = false;
  expect_same_rows(model, decompose(net, model, opts));
}

TEST(DecomposeEquivalenceTest, RowReductionPreservesSolutionSet) {
  // After reduction the rows differ, but any point satisfying the reduced
  // blocks must satisfy the original equations; check with the reduced
  // blocks' own least-norm solutions mapped through B_s consistency via a
  // full feasible point: use x0-projection per component.
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  const auto reduced = decompose(net, model);
  DecomposeOptions raw_opts;
  raw_opts.row_reduce = false;
  const auto raw = decompose(net, model, raw_opts);
  ASSERT_EQ(reduced.num_components(), raw.num_components());
  for (std::size_t s = 0; s < raw.num_components(); ++s) {
    const Component& cr = reduced.components[s];
    const Component& cu = raw.components[s];
    ASSERT_EQ(cr.global, cu.global) << cr.name;
    // Build a point satisfying the reduced block via projection of zero.
    dopf::linalg::AffineProjector proj(cr.a, cr.b);
    const std::vector<double> x =
        proj.project(std::vector<double>(cr.num_vars(), 0.0));
    // It must satisfy every *unreduced* row too.
    for (std::size_t r = 0; r < cu.num_rows(); ++r) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < cu.num_vars(); ++j) {
        lhs += cu.a(r, j) * x[j];
      }
      EXPECT_NEAR(lhs, cu.b[r], 1e-9) << cu.name << " row " << r;
    }
  }
}

}  // namespace
}  // namespace dopf::opf
