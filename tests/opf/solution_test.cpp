#include "opf/solution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"

namespace dopf::opf {
namespace {

using network::Phase;

struct Fixture {
  dopf::network::Network net = dopf::feeders::ieee13();
  OpfModel model = build_model(net);
  DistributedProblem problem = decompose(net, model);
  std::vector<double> x;

  Fixture() {
    dopf::core::AdmmOptions opt;
    opt.eps_rel = 1e-5;
    opt.max_iterations = 100000;
    dopf::core::SolverFreeAdmm admm(problem, opt);
    x = admm.solve().x;
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(SolutionViewTest, GenerationBalancesLoadLosslessly) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  // The linearized flow model (5a) with zero shunt conductance is lossless,
  // so total generation tracks total bus withdrawals.
  EXPECT_NEAR(view.total_generation(), view.total_load(),
              0.02 * (1.0 + view.total_load()));
}

TEST(SolutionViewTest, ObjectiveMatchesModel) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  EXPECT_DOUBLE_EQ(view.objective(), fixture().model.objective(fixture().x));
}

TEST(SolutionViewTest, VoltagesWithinBand) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  EXPECT_GE(view.min_voltage(), 0.94);
  EXPECT_LE(view.max_voltage(), 1.06);
  EXPECT_LE(view.min_voltage(), view.max_voltage());
}

TEST(SolutionViewTest, PerPhaseAccessorsConsistentWithTotals) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  double sum = 0.0;
  for (const auto& g : fixture().net.generators()) {
    for (Phase p : g.phases.phases()) sum += view.gen_p(g.id, p);
  }
  EXPECT_NEAR(sum, view.total_generation(), 1e-12);
}

TEST(SolutionViewTest, FlowDirectionsAntiSymmetricWithoutShunts) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  // (5a) with g-shunts = 0 (true for the ieee13 builder): p_f = -p_t.
  for (const auto& l : fixture().net.lines()) {
    for (Phase p : l.phases.phases()) {
      EXPECT_NEAR(view.flow_p_from(l.id, p), -view.flow_p_to(l.id, p), 1e-4);
    }
  }
}

TEST(SolutionViewTest, VoltageIsSqrtOfW) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  const double w = view.bus_w(2, Phase::kA);
  EXPECT_NEAR(view.bus_v(2, Phase::kA), std::sqrt(w), 1e-15);
}

TEST(SolutionViewTest, MissingPhaseThrows) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  // Bus "611" chain is phase-c only; find a c-only bus.
  int c_only = -1;
  for (const auto& b : fixture().net.buses()) {
    if (b.phases == dopf::network::PhaseSet::c()) c_only = b.id;
  }
  ASSERT_GE(c_only, 0);
  EXPECT_THROW(view.bus_w(c_only, Phase::kA), std::out_of_range);
}

TEST(SolutionViewTest, WrongSizeRejected) {
  std::vector<double> tiny(3, 0.0);
  EXPECT_THROW(SolutionView(fixture().net, fixture().model, tiny),
               std::invalid_argument);
}

TEST(SolutionViewTest, ReportMentionsKeySections) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  const std::string report = view.report();
  EXPECT_NE(report.find("objective:"), std::string::npos);
  EXPECT_NE(report.find("dispatch:"), std::string::npos);
  EXPECT_NE(report.find("substation"), std::string::npos);
  EXPECT_NE(report.find("most loaded lines:"), std::string::npos);
}

TEST(SolutionViewTest, MaxLoadingIsHighestNearSubstation) {
  const SolutionView view(fixture().net, fixture().model, fixture().x);
  // Line 0 is the regulator carrying the whole feeder.
  double best = 0.0;
  for (const auto& l : fixture().net.lines()) {
    best = std::max(best, view.max_loading(l.id));
  }
  // Within ADMM tolerance of the global maximum (line 1, the trunk, carries
  // essentially the same power as the regulator).
  EXPECT_NEAR(view.max_loading(0), best, 1e-4);
}

}  // namespace
}  // namespace dopf::opf
