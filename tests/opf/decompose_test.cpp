#include "opf/decompose.hpp"

#include <gtest/gtest.h>

#include "feeders/ieee13.hpp"
#include "linalg/cholesky.hpp"

namespace dopf::opf {
namespace {

using network::Network;

TEST(DecomposeTest, Ieee13ComponentCountMatchesTable3) {
  const Network net = dopf::feeders::ieee13();
  const DistributedProblem p = decompose(net);
  // S = nodes + lines - leaves = 29 + 28 - 7 = 50.
  EXPECT_EQ(p.num_components(), 50u);
}

TEST(DecomposeTest, NoLeafMergeGivesNodesPlusLines) {
  const Network net = dopf::feeders::ieee13();
  DecomposeOptions opts;
  opts.merge_leaves = false;
  const DistributedProblem p = decompose(net, opts);
  EXPECT_EQ(p.num_components(), 29u + 28u);
}

TEST(DecomposeTest, EveryVariableIsCovered) {
  const Network net = dopf::feeders::ieee13();
  const DistributedProblem p = decompose(net);
  for (std::size_t i = 0; i < p.num_vars; ++i) {
    EXPECT_GE(p.copy_count[i], 1) << "variable " << i;
  }
}

TEST(DecomposeTest, CopyCountsMatchComponentMembership) {
  const Network net = dopf::feeders::ieee13();
  const DistributedProblem p = decompose(net);
  std::vector<int> recount(p.num_vars, 0);
  for (const Component& comp : p.components) {
    std::vector<bool> seen(p.num_vars, false);
    for (int g : comp.global) {
      EXPECT_FALSE(seen[g]) << "duplicate copy within a component";
      seen[g] = true;
      ++recount[g];
    }
  }
  EXPECT_EQ(recount, p.copy_count);
}

TEST(DecomposeTest, ComponentsHaveFullRowRankAfterReduction) {
  const Network net = dopf::feeders::ieee13();
  const DistributedProblem p = decompose(net);
  for (const Component& comp : p.components) {
    ASSERT_GT(comp.num_rows(), 0u) << comp.name;
    EXPECT_LE(comp.num_rows(), comp.num_vars()) << comp.name;
    // A_s A_s^T must be SPD, the property (15) relies on.
    EXPECT_NO_THROW(dopf::linalg::Cholesky{dopf::linalg::gram_aat(comp.a)})
        << comp.name;
  }
}

TEST(DecomposeTest, RowReductionOnlyDropsDependentRows) {
  const Network net = dopf::feeders::ieee13();
  DecomposeOptions raw;
  raw.row_reduce = false;
  const DistributedProblem unreduced = decompose(net, raw);
  const DistributedProblem reduced = decompose(net);
  ASSERT_EQ(unreduced.num_components(), reduced.num_components());
  std::size_t dropped = 0;
  for (std::size_t s = 0; s < reduced.num_components(); ++s) {
    EXPECT_LE(reduced.components[s].num_rows(),
              unreduced.components[s].num_rows());
    EXPECT_EQ(reduced.components[s].rows_before_reduction,
              unreduced.components[s].num_rows());
    dropped += unreduced.components[s].num_rows() -
               reduced.components[s].num_rows();
  }
  // The ieee13 model is built without redundant rows, so nothing drops;
  // what matters is that reduction never *adds* rows and stays consistent.
  EXPECT_LT(dropped, unreduced.total_local_rows());
}

TEST(DecomposeTest, LocalSystemsAreSatisfiedByCentralizedSolution) {
  // Any x satisfying the full model satisfies every component block under
  // the B_s mapping. Use x0 where feasible rows allow a direct check:
  // verify instead that component equations are exactly rows of the model
  // restricted to the component's variables (structural equivalence).
  const Network net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  DecomposeOptions opts;
  opts.row_reduce = false;  // keep raw rows for one-to-one comparison
  const DistributedProblem p = decompose(net, model, opts);
  std::size_t total_rows = 0;
  for (const Component& comp : p.components) total_rows += comp.num_rows();
  EXPECT_EQ(total_rows, model.num_equations());
}

TEST(DecomposeTest, LeafComponentsAreMergedBusPlusLine) {
  const Network net = dopf::feeders::ieee13();
  const DistributedProblem p = decompose(net);
  std::size_t leaf_comps = 0;
  for (const Component& comp : p.components) {
    if (comp.name.rfind("leaf:", 0) == 0) ++leaf_comps;
  }
  EXPECT_EQ(leaf_comps, 7u);
}

TEST(DecomposeTest, FeederHeadBusIsItsOwnComponent) {
  const Network net = dopf::feeders::ieee13();
  const DistributedProblem p = decompose(net);
  bool found = false;
  for (const Component& comp : p.components) {
    if (comp.name == "bus:sourcebus") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DecomposeTest, SubproblemSizesAreSmall) {
  // The point of component-wise decomposition: every block stays tiny
  // (Table IV: max m_s = 22, max n_s = 34 for the 13-bus system).
  const Network net = dopf::feeders::ieee13();
  const DistributedProblem p = decompose(net);
  for (const Component& comp : p.components) {
    EXPECT_LE(comp.num_rows(), 40u) << comp.name;
    EXPECT_LE(comp.num_vars(), 60u) << comp.name;
  }
}

TEST(DecomposeTest, TotalsAreConsistent) {
  const Network net = dopf::feeders::ieee13();
  const DistributedProblem p = decompose(net);
  std::size_t nvars = 0, nrows = 0;
  long long copies = 0;
  for (const Component& comp : p.components) {
    nvars += comp.num_vars();
    nrows += comp.num_rows();
  }
  for (int c : p.copy_count) copies += c;
  EXPECT_EQ(p.total_local_vars(), nvars);
  EXPECT_EQ(p.total_local_rows(), nrows);
  EXPECT_EQ(static_cast<long long>(nvars), copies);
}

}  // namespace
}  // namespace dopf::opf
