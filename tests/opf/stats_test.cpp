#include "opf/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "feeders/ieee13.hpp"

namespace dopf::opf {
namespace {

TEST(StatsTest, ModelSizesCountEquationsVarsNnz) {
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  const ModelSizes s = model_sizes(model);
  EXPECT_EQ(s.rows, model.num_equations());
  EXPECT_EQ(s.cols, model.num_vars());
  std::size_t nnz = 0;
  for (const auto& eq : model.equations) nnz += eq.terms.size();
  EXPECT_EQ(s.nonzeros, nnz);
  // Table II ballpark for the 13-bus instance (paper: 456 x 454).
  EXPECT_GT(s.rows, 300u);
  EXPECT_LT(s.rows, 600u);
  EXPECT_GT(s.cols, 300u);
  EXPECT_LT(s.cols, 600u);
}

TEST(StatsTest, ComponentCountsIeee13MatchPaperTable3) {
  const auto net = dopf::feeders::ieee13();
  const auto model = build_model(net);
  const auto problem = decompose(net, model);
  const ComponentCounts c = component_counts(net, problem);
  EXPECT_EQ(c.nodes, 29u);
  EXPECT_EQ(c.lines, 28u);
  EXPECT_EQ(c.leaves, 7u);
  EXPECT_EQ(c.S, 50u);
  EXPECT_EQ(c.S, c.nodes + c.lines - c.leaves);
}

TEST(StatsTest, SubproblemStatsConsistency) {
  const auto net = dopf::feeders::ieee13();
  const auto problem = decompose(net);
  const SubproblemStats s = subproblem_stats(problem);
  EXPECT_LE(s.rows.min, static_cast<std::size_t>(s.rows.mean));
  EXPECT_GE(s.rows.max, static_cast<std::size_t>(s.rows.mean));
  EXPECT_GE(s.rows.stdev, 0.0);
  EXPECT_EQ(s.rows.sum, problem.total_local_rows());
  EXPECT_EQ(s.cols.sum, problem.total_local_vars());
  // mean * count == sum.
  EXPECT_NEAR(s.rows.mean * static_cast<double>(problem.num_components()),
              static_cast<double>(s.rows.sum), 1e-9);
}

TEST(StatsTest, StdevMatchesDirectComputation) {
  const auto net = dopf::feeders::ieee13();
  const auto problem = decompose(net);
  const SubproblemStats s = subproblem_stats(problem);
  double mean = 0.0;
  for (const auto& comp : problem.components) {
    mean += static_cast<double>(comp.num_rows());
  }
  mean /= static_cast<double>(problem.num_components());
  double var = 0.0;
  for (const auto& comp : problem.components) {
    const double d = static_cast<double>(comp.num_rows()) - mean;
    var += d * d;
  }
  var /= static_cast<double>(problem.num_components());
  EXPECT_NEAR(s.rows.stdev, std::sqrt(var), 1e-9);
}

TEST(StatsTest, FormattersMentionEveryNumber) {
  const auto net = dopf::feeders::ieee13();
  const auto model = build_model(net);
  const auto problem = decompose(net, model);
  const std::string t2 = format_table2_row("ieee13", model_sizes(model));
  EXPECT_NE(t2.find("ieee13"), std::string::npos);
  const std::string t3 =
      format_table3("ieee13", component_counts(net, problem));
  EXPECT_NE(t3.find("S=50"), std::string::npos);
  EXPECT_NE(t3.find("nodes=29"), std::string::npos);
  const std::string t4 = format_table4("ieee13", subproblem_stats(problem));
  EXPECT_NE(t4.find("m_s"), std::string::npos);
  EXPECT_NE(t4.find("n_s"), std::string::npos);
}

TEST(StatsTest, EmptyProblemGivesZeroStats) {
  DistributedProblem empty;
  const SubproblemStats s = subproblem_stats(empty);
  EXPECT_EQ(s.rows.min, 0u);
  EXPECT_EQ(s.rows.max, 0u);
  EXPECT_EQ(s.rows.sum, 0u);
}

}  // namespace
}  // namespace dopf::opf
