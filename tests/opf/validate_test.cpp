#include "opf/validate.hpp"

#include <gtest/gtest.h>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "feeders/synthetic.hpp"
#include "opf/decompose.hpp"
#include "solver/reference.hpp"

namespace dopf::opf {
namespace {

TEST(ValidateTest, ReferenceSolutionPassesPhysicsChecks) {
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  const auto ref = dopf::solver::reference_solve(model);
  ASSERT_EQ(ref.status, dopf::solver::LpStatus::kOptimal);
  const ValidationReport report = validate_solution(net, model, ref.x);
  EXPECT_TRUE(report.ok(1e-5)) << report.to_string();
}

TEST(ValidateTest, AdmmSolutionPassesAtItsTolerance) {
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  const auto problem = decompose(net, model);
  dopf::core::AdmmOptions opt;
  opt.eps_rel = 1e-5;
  opt.max_iterations = 100000;
  dopf::core::SolverFreeAdmm admm(problem, opt);
  const auto res = admm.solve();
  ASSERT_TRUE(res.converged);
  const ValidationReport report = validate_solution(net, model, res.x);
  EXPECT_TRUE(report.ok(1e-3)) << report.to_string();
  EXPECT_EQ(report.max_bound_violation, 0.0);  // clipped global update
}

TEST(ValidateTest, SyntheticFeederSolutionValidates) {
  const auto net =
      dopf::feeders::synthetic_feeder(dopf::feeders::ieee123_spec());
  const OpfModel model = build_model(net);
  const auto ref = dopf::solver::reference_solve(model);
  ASSERT_EQ(ref.status, dopf::solver::LpStatus::kOptimal);
  const ValidationReport report = validate_solution(net, model, ref.x);
  EXPECT_TRUE(report.ok(1e-4)) << report.to_string();
}

TEST(ValidateTest, DetectsCorruptedDispatch) {
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  auto ref = dopf::solver::reference_solve(model);
  ASSERT_EQ(ref.status, dopf::solver::LpStatus::kOptimal);
  // Steal 0.1 pu of substation phase-a generation: the bus balance must
  // light up by exactly that amount.
  ref.x[model.vars.gen_p(0, dopf::network::Phase::kA)] -= 0.1;
  const ValidationReport report = validate_solution(net, model, ref.x);
  EXPECT_NEAR(report.max_p_balance, 0.1, 1e-5);
  EXPECT_FALSE(report.ok(1e-3));
}

TEST(ValidateTest, DetectsVoltageTampering) {
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  auto ref = dopf::solver::reference_solve(model);
  ref.x[model.vars.bus_w(4, dopf::network::Phase::kB)] += 0.05;  // bus 671
  const ValidationReport report = validate_solution(net, model, ref.x);
  // Voltage equation (5c) of the incident lines must fire.
  EXPECT_GT(report.max_voltage_equation, 1e-3);
}

TEST(ValidateTest, DetectsBoundViolation) {
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  auto ref = dopf::solver::reference_solve(model);
  // PV generator (id 1) has p_max = 0.02 per phase; violate it.
  ref.x[model.vars.gen_p(1, dopf::network::Phase::kA)] = 1.0;
  const ValidationReport report = validate_solution(net, model, ref.x);
  EXPECT_GT(report.max_bound_violation, 0.9);
  // The tampered injection shows up both as a bound violation at the PV and
  // as a balance violation at its bus; either may be the worst site.
  EXPECT_TRUE(report.worst_site == "pv680" || report.worst_site == "s680b")
      << report.worst_site;
}

TEST(ValidateTest, WorstCheckNamesDominantCategory) {
  ValidationReport report;
  report.max_flow_consistency = 0.5;
  report.max_p_balance = 0.1;
  EXPECT_EQ(report.worst_check(), "flow");
  report.max_bound_violation = 0.9;
  EXPECT_EQ(report.worst_check(), "bounds");
  // All-zero report: still a well-defined (first) category.
  EXPECT_EQ(ValidationReport{}.worst_check(), "P-balance");
}

TEST(ValidateTest, ReportStringListsEveryCategory) {
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  const auto ref = dopf::solver::reference_solve(model);
  const std::string s = validate_solution(net, model, ref.x).to_string();
  for (const char* key : {"P-balance", "Q-balance", "flow", "voltage",
                          "load-model", "bounds"}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST(ValidateTest, BuilderAndValidatorAgreeOnResiduals) {
  // The independent physics recomputation and the model's own Ax-b residual
  // must agree on a *random* (infeasible) point up to the delta-coupling
  // rows the validator checks only in aggregate.
  const auto net = dopf::feeders::ieee13();
  const OpfModel model = build_model(net);
  std::vector<double> x(model.num_vars(), 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.01 * static_cast<double>((i * 2654435761u) % 100) - 0.5;
  }
  const ValidationReport report = validate_solution(net, model, x);
  const double builder_residual = model.equation_residual(x);
  // Both should flag gross infeasibility of the same order.
  EXPECT_GT(report.worst(), 0.1);
  EXPECT_GT(builder_residual, 0.1);
  EXPECT_LT(report.worst(), builder_residual * 10 + 1.0);
}

}  // namespace
}  // namespace dopf::opf
