#include "opf/model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace dopf::opf {
namespace {

using network::Bus;
using network::Connection;
using network::Generator;
using network::Line;
using network::Load;
using network::Network;
using network::PerPhase;
using network::Phase;
using network::PhaseSet;

constexpr double kSqrt3 = 1.7320508075688772;

/// Two-bus single-phase test system with every feature on.
Network tiny() {
  Network net;
  Bus b;
  b.name = "src";
  b.phases = PhaseSet::a();
  b.w_min = PerPhase<double>::uniform(1.0);
  b.w_max = PerPhase<double>::uniform(1.0);
  net.add_bus(b);
  Bus b2;
  b2.name = "ld";
  b2.phases = PhaseSet::a();
  b2.g_shunt = PerPhase<double>::uniform(0.01);
  b2.b_shunt = PerPhase<double>::uniform(0.02);
  net.add_bus(b2);
  Line l;
  l.name = "line";
  l.from_bus = 0;
  l.to_bus = 1;
  l.phases = PhaseSet::a();
  l.r = network::PhaseMatrix::diagonal(0.05);
  l.x = network::PhaseMatrix::diagonal(0.1);
  l.g_shunt_from = PerPhase<double>::uniform(0.003);
  l.b_shunt_from = PerPhase<double>::uniform(0.004);
  l.g_shunt_to = PerPhase<double>::uniform(0.005);
  l.b_shunt_to = PerPhase<double>::uniform(0.006);
  l.tap_ratio = PerPhase<double>::uniform(1.02);
  l.flow_limit = PerPhase<double>::uniform(2.0);
  net.add_line(l);
  Generator g;
  g.name = "sub";
  g.bus = 0;
  g.phases = PhaseSet::a();
  g.p_min = PerPhase<double>::uniform(0.0);
  g.p_max = PerPhase<double>::uniform(5.0);
  g.q_min = PerPhase<double>::uniform(-1.0);
  g.q_max = PerPhase<double>::uniform(1.0);
  g.cost = 2.5;
  net.add_generator(g);
  Load ld;
  ld.name = "wye";
  ld.bus = 1;
  ld.phases = PhaseSet::a();
  ld.connection = Connection::kWye;
  ld.p_ref = PerPhase<double>::uniform(0.4);
  ld.q_ref = PerPhase<double>::uniform(0.2);
  ld.alpha = PerPhase<double>::uniform(1.0);  // constant current
  ld.beta = PerPhase<double>::uniform(2.0);   // constant impedance
  net.add_load(ld);
  return net;
}

const Equation& find_equation(const OpfModel& model, const std::string& name) {
  for (const Equation& eq : model.equations) {
    if (eq.name == name) return eq;
  }
  throw std::runtime_error("no equation named " + name);
}

std::map<int, double> terms_of(const Equation& eq) {
  std::map<int, double> out;
  for (const auto& [var, coeff] : eq.terms) out[var] += coeff;
  return out;
}

TEST(ModelTest, EquationCountTiny) {
  const OpfModel m = build_model(tiny());
  // per bus-phase: 2 balance (x2 buses) = 4; load: 2 load-model + 2 wye = 4;
  // line: 3. Total 11.
  EXPECT_EQ(m.num_equations(), 11u);
  // vars: gen 2 + w 2 + load 4 + flows 4 = 12.
  EXPECT_EQ(m.num_vars(), 12u);
}

TEST(ModelTest, BalanceEquationCoefficients) {
  const Network net = tiny();
  const OpfModel m = build_model(net);
  const auto& v = m.vars;
  // Bus 1 (load bus, to-side of the line), phase a, real balance (3a):
  // p_t + p^b + g_sh * w - (no gen) = 0.
  const auto terms = terms_of(find_equation(m, "balP[ld,a]"));
  EXPECT_EQ(terms.at(v.flow_pt(0, Phase::kA)), 1.0);
  EXPECT_EQ(terms.at(v.load_pb(0, Phase::kA)), 1.0);
  EXPECT_EQ(terms.at(v.bus_w(1, Phase::kA)), 0.01);
  EXPECT_EQ(terms.size(), 3u);

  // Bus 0 (source, from-side), reactive balance (3b):
  // q_f - b_sh w - q^g = 0 with b_sh = 0 at the source.
  const auto terms0 = terms_of(find_equation(m, "balQ[src,a]"));
  EXPECT_EQ(terms0.at(v.flow_qf(0, Phase::kA)), 1.0);
  EXPECT_EQ(terms0.at(v.gen_q(0, Phase::kA)), -1.0);
}

TEST(ModelTest, ReactiveBalanceShuntSign) {
  const Network net = tiny();
  const OpfModel m = build_model(net);
  const auto& v = m.vars;
  // (3b): ... - b_sh w = q^g, so the w coefficient is -b_sh.
  const auto terms = terms_of(find_equation(m, "balQ[ld,a]"));
  EXPECT_EQ(terms.at(v.bus_w(1, Phase::kA)), -0.02);
}

TEST(ModelTest, VoltageDependentLoadRows) {
  const Network net = tiny();
  const OpfModel m = build_model(net);
  const auto& v = m.vars;
  // (4a) with alpha=1, a=0.4, wye (kappa=1):
  // pd - (0.4*1/2) w = 0.4 * (1 - 1/2) = 0.2.
  const Equation& ep = find_equation(m, "loadP[wye,a]");
  const auto terms = terms_of(ep);
  EXPECT_DOUBLE_EQ(terms.at(v.load_pd(0, Phase::kA)), 1.0);
  EXPECT_DOUBLE_EQ(terms.at(v.bus_w(1, Phase::kA)), -0.2);
  EXPECT_DOUBLE_EQ(ep.rhs, 0.2);
  // (4b) with beta=2, b=0.2: qd - 0.2 w = 0.2 * (1 - 1) = 0.
  const Equation& eq = find_equation(m, "loadQ[wye,a]");
  const auto qterms = terms_of(eq);
  EXPECT_DOUBLE_EQ(qterms.at(v.load_qd(0, Phase::kA)), 1.0);
  EXPECT_DOUBLE_EQ(qterms.at(v.bus_w(1, Phase::kA)), -0.2);
  EXPECT_DOUBLE_EQ(eq.rhs, 0.0);
}

TEST(ModelTest, ConstantPowerLoadHasNoVoltageTerm) {
  Network net = tiny();
  net.load_mutable(0).alpha = PerPhase<double>::uniform(0.0);
  const OpfModel m = build_model(net);
  const Equation& ep = find_equation(m, "loadP[wye,a]");
  const auto terms = terms_of(ep);
  EXPECT_EQ(terms.count(m.vars.bus_w(1, Phase::kA)), 0u);
  EXPECT_DOUBLE_EQ(ep.rhs, 0.4);
}

TEST(ModelTest, WyeConnectionTiesPbToPd) {
  const OpfModel m = build_model(tiny());
  const auto& v = m.vars;
  const auto terms = terms_of(find_equation(m, "wyeP[wye]"));
  EXPECT_EQ(terms.at(v.load_pb(0, Phase::kA)), 1.0);
  EXPECT_EQ(terms.at(v.load_pd(0, Phase::kA)), -1.0);
}

TEST(ModelTest, FlowEquation5aWithShunts) {
  const OpfModel m = build_model(tiny());
  const auto& v = m.vars;
  // (5a): p_f + p_t - g_f w_i - g_t w_j = 0.
  const auto terms = terms_of(find_equation(m, "flowP[line,a]"));
  EXPECT_EQ(terms.at(v.flow_pf(0, Phase::kA)), 1.0);
  EXPECT_EQ(terms.at(v.flow_pt(0, Phase::kA)), 1.0);
  EXPECT_EQ(terms.at(v.bus_w(0, Phase::kA)), -0.003);
  EXPECT_EQ(terms.at(v.bus_w(1, Phase::kA)), -0.005);
  // (5b): q_f + q_t + b_f w_i + b_t w_j = 0.
  const auto qterms = terms_of(find_equation(m, "flowQ[line,a]"));
  EXPECT_EQ(qterms.at(v.bus_w(0, Phase::kA)), 0.004);
  EXPECT_EQ(qterms.at(v.bus_w(1, Phase::kA)), 0.006);
}

TEST(ModelTest, VoltageEquation5cSinglePhase) {
  const OpfModel m = build_model(tiny());
  const auto& v = m.vars;
  // Single phase: M^p = -2r = -0.1, M^q = -2x = -0.2.
  // (5c): w_i - tau w_j + M^p (p_f - g_f w_i) + M^q (q_f + b_f w_i) = 0
  //  => w_i coeff: 1 - M^p g_f + M^q b_f = 1 + 0.1*0.003 - 0.2*0.004
  const auto terms = terms_of(find_equation(m, "volt[line,a]"));
  EXPECT_NEAR(terms.at(v.bus_w(0, Phase::kA)),
              1.0 + 0.1 * 0.003 - 0.2 * 0.004, 1e-15);
  EXPECT_DOUBLE_EQ(terms.at(v.bus_w(1, Phase::kA)), -1.02);
  EXPECT_DOUBLE_EQ(terms.at(v.flow_pf(0, Phase::kA)), -0.1);
  EXPECT_DOUBLE_EQ(terms.at(v.flow_qf(0, Phase::kA)), -0.2);
}

TEST(ModelTest, MpMqSignPatternThreePhase) {
  // Three-phase line with distinct off-diagonal impedances; verify the
  // paper's M^p / M^q sign pattern.
  Network net;
  Bus b;
  b.phases = PhaseSet::abc();
  net.add_bus(b);
  net.add_bus(b);
  Line l;
  l.name = "L";
  l.from_bus = 0;
  l.to_bus = 1;
  l.phases = PhaseSet::abc();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      l.r(i, j) = 0.01 * (1 + i) * (1 + j);
      l.x(i, j) = 0.02 * (1 + i) + 0.005 * j;
    }
  }
  net.add_line(l);
  Generator g;
  g.bus = 0;
  net.add_generator(g);
  const Network& cnet = net;
  const OpfModel m = build_model(cnet);
  const auto& v = m.vars;
  const Line& line = cnet.line(0);

  // Row phi=a of (5c): coefficient of p_f psi=b is M^p[1][2] (paper
  // indexing) = r_12 - sqrt(3) x_12.
  const auto terms_a = terms_of(find_equation(m, "volt[L,a]"));
  EXPECT_NEAR(terms_a.at(v.flow_pf(0, Phase::kB)),
              line.r(0, 1) - kSqrt3 * line.x(0, 1), 1e-15);
  EXPECT_NEAR(terms_a.at(v.flow_pf(0, Phase::kC)),
              line.r(0, 2) + kSqrt3 * line.x(0, 2), 1e-15);
  EXPECT_NEAR(terms_a.at(v.flow_qf(0, Phase::kB)),
              line.x(0, 1) + kSqrt3 * line.r(0, 1), 1e-15);
  EXPECT_NEAR(terms_a.at(v.flow_qf(0, Phase::kC)),
              line.x(0, 2) - kSqrt3 * line.r(0, 2), 1e-15);
  // Diagonals: -2r, -2x.
  EXPECT_NEAR(terms_a.at(v.flow_pf(0, Phase::kA)), -2.0 * line.r(0, 0),
              1e-15);
  EXPECT_NEAR(terms_a.at(v.flow_qf(0, Phase::kA)), -2.0 * line.x(0, 0),
              1e-15);
  // Row phi=b: M^p[2][1] = r_21 + sqrt(3) x_21, M^p[2][3] = r_23 - sqrt3 x.
  const auto terms_b = terms_of(find_equation(m, "volt[L,b]"));
  EXPECT_NEAR(terms_b.at(v.flow_pf(0, Phase::kA)),
              line.r(1, 0) + kSqrt3 * line.x(1, 0), 1e-15);
  EXPECT_NEAR(terms_b.at(v.flow_pf(0, Phase::kC)),
              line.r(1, 2) - kSqrt3 * line.x(1, 2), 1e-15);
}

TEST(ModelTest, DeltaLoadEquations) {
  Network net;
  Bus b;
  b.phases = PhaseSet::abc();
  net.add_bus(b);
  net.add_bus(b);
  Line l;
  l.from_bus = 0;
  l.to_bus = 1;
  net.add_line(l);
  Generator g;
  g.bus = 0;
  net.add_generator(g);
  Load ld;
  ld.name = "D";
  ld.bus = 1;
  ld.connection = Connection::kDelta;
  ld.p_ref = PerPhase<double>::uniform(0.3);
  ld.q_ref = PerPhase<double>::uniform(0.1);
  ld.alpha = PerPhase<double>::uniform(2.0);
  ld.beta = PerPhase<double>::uniform(0.0);
  net.add_load(ld);
  const OpfModel m = build_model(net);
  const auto& v = m.vars;

  // Delta voltage-dependent load (4a)+(4d): pd - (a alpha/2)*3 w = a(1-a/2).
  const Equation& ep = find_equation(m, "loadP[D,a]");
  const auto terms = terms_of(ep);
  EXPECT_NEAR(terms.at(v.bus_w(1, Phase::kA)), -0.5 * 0.3 * 2.0 * 3.0, 1e-15);
  EXPECT_NEAR(ep.rhs, 0.3 * (1.0 - 1.0), 1e-15);

  // (4g): 1.5 pb2 - (sqrt3/2) qb2 - pd2 - 0.5 pd1 + (sqrt3/2) qd1 = 0.
  const auto g4 = terms_of(find_equation(m, "delta4g[D]"));
  EXPECT_DOUBLE_EQ(g4.at(v.load_pb(0, Phase::kB)), 1.5);
  EXPECT_NEAR(g4.at(v.load_qb(0, Phase::kB)), -0.5 * kSqrt3, 1e-15);
  EXPECT_DOUBLE_EQ(g4.at(v.load_pd(0, Phase::kB)), -1.0);
  EXPECT_DOUBLE_EQ(g4.at(v.load_pd(0, Phase::kA)), -0.5);
  EXPECT_NEAR(g4.at(v.load_qd(0, Phase::kA)), 0.5 * kSqrt3, 1e-15);

  // (4f): both aggregate rows present with +-1 coefficients.
  const auto sum_p = terms_of(find_equation(m, "deltaSumP[D]"));
  for (auto ph : {Phase::kA, Phase::kB, Phase::kC}) {
    EXPECT_DOUBLE_EQ(sum_p.at(v.load_pb(0, ph)), 1.0);
    EXPECT_DOUBLE_EQ(sum_p.at(v.load_pd(0, ph)), -1.0);
  }
}

TEST(ModelTest, BoundsAndObjective) {
  const Network net = tiny();
  const OpfModel m = build_model(net);
  const auto& v = m.vars;
  EXPECT_EQ(m.c[v.gen_p(0, Phase::kA)], 2.5);
  EXPECT_EQ(m.c[v.gen_q(0, Phase::kA)], 0.0);
  EXPECT_EQ(m.lb[v.gen_p(0, Phase::kA)], 0.0);
  EXPECT_EQ(m.ub[v.gen_p(0, Phase::kA)], 5.0);
  EXPECT_EQ(m.lb[v.bus_w(0, Phase::kA)], 1.0);
  EXPECT_EQ(m.ub[v.bus_w(0, Phase::kA)], 1.0);
  // Flow limits symmetric.
  EXPECT_EQ(m.lb[v.flow_pf(0, Phase::kA)], -2.0);
  EXPECT_EQ(m.ub[v.flow_qt(0, Phase::kA)], 2.0);
  // Load variables unbounded.
  EXPECT_TRUE(dopf::linalg::is_unbounded(m.lb[v.load_pb(0, Phase::kA)]));
}

TEST(ModelTest, InitialPointRules) {
  const Network net = tiny();
  const OpfModel m = build_model(net);
  const auto& v = m.vars;
  EXPECT_EQ(m.x0[v.bus_w(1, Phase::kA)], 1.0);          // voltage -> 1
  EXPECT_EQ(m.x0[v.gen_p(0, Phase::kA)], 2.5);          // midpoint of [0,5]
  EXPECT_EQ(m.x0[v.gen_q(0, Phase::kA)], 0.0);          // midpoint of [-1,1]
  EXPECT_EQ(m.x0[v.load_pb(0, Phase::kA)], 0.0);        // unbounded -> 0
  EXPECT_EQ(m.x0[v.flow_pf(0, Phase::kA)], 0.0);        // midpoint of [-2,2]
}

TEST(ModelTest, ConstraintMatrixMatchesEquations) {
  const OpfModel m = build_model(tiny());
  const auto a = m.constraint_matrix();
  EXPECT_EQ(a.rows(), m.num_equations());
  EXPECT_EQ(a.cols(), m.num_vars());
  for (std::size_t r = 0; r < m.num_equations(); ++r) {
    for (const auto& [var, coeff] : m.equations[r].terms) {
      (void)coeff;
      EXPECT_NE(a.at(r, var), 0.0);
    }
  }
}

TEST(ModelTest, ResidualHelpersDetectViolations) {
  const OpfModel m = build_model(tiny());
  std::vector<double> x(m.num_vars(), 0.0);
  EXPECT_GT(m.equation_residual(x), 0.0);  // loads make rhs nonzero
  EXPECT_GT(m.bound_violation(x), 0.0);    // w = 0 < w_min
  std::vector<double> x0 = m.x0;
  EXPECT_EQ(m.bound_violation(x0), 0.0);   // x0 is always inside the box
}

TEST(ModelTest, OwnershipTagsAreConsistent) {
  const OpfModel m = build_model(tiny());
  for (const Equation& eq : m.equations) {
    if (eq.name.rfind("bal", 0) == 0 || eq.name.rfind("load", 0) == 0 ||
        eq.name.rfind("wye", 0) == 0 || eq.name.rfind("delta", 0) == 0) {
      EXPECT_EQ(eq.owner, Owner::kBus) << eq.name;
    } else {
      EXPECT_EQ(eq.owner, Owner::kLine) << eq.name;
    }
  }
}

}  // namespace
}  // namespace dopf::opf
