#include "opf/variables.hpp"

#include <gtest/gtest.h>

#include "feeders/ieee13.hpp"

namespace dopf::opf {
namespace {

using network::Bus;
using network::Generator;
using network::Line;
using network::Load;
using network::Network;
using network::Phase;
using network::PhaseSet;

Network small_net() {
  Network net;
  Bus b;
  b.name = "a";
  b.phases = PhaseSet::abc();
  net.add_bus(b);
  b.name = "b";
  b.phases = PhaseSet::ac();
  net.add_bus(b);
  Line l;
  l.from_bus = 0;
  l.to_bus = 1;
  l.phases = PhaseSet::ac();
  net.add_line(l);
  Generator g;
  g.bus = 0;
  g.phases = PhaseSet::abc();
  net.add_generator(g);
  Load ld;
  ld.bus = 1;
  ld.phases = PhaseSet::a();
  net.add_load(ld);
  return net;
}

TEST(VariableIndexTest, CountsMatchStructure) {
  const Network net = small_net();
  const VariableIndex vars(net);
  // gens: 3 phases * 2; buses: (3 + 2) w; loads: 1 phase * 4;
  // lines: 2 phases * 4.
  EXPECT_EQ(vars.size(), 6u + 5u + 4u + 8u);
}

TEST(VariableIndexTest, AbsentPhaseGivesMinusOne) {
  const Network net = small_net();
  const VariableIndex vars(net);
  EXPECT_EQ(vars.bus_w(1, Phase::kB), -1);
  EXPECT_GE(vars.bus_w(1, Phase::kA), 0);
  EXPECT_EQ(vars.load_pd(0, Phase::kC), -1);
  EXPECT_EQ(vars.flow_pf(0, Phase::kB), -1);
}

TEST(VariableIndexTest, IndicesAreDenseAndUnique) {
  const Network net = small_net();
  const VariableIndex vars(net);
  std::vector<bool> seen(vars.size(), false);
  auto mark = [&](int idx) {
    if (idx < 0) return;
    ASSERT_LT(static_cast<std::size_t>(idx), seen.size());
    EXPECT_FALSE(seen[idx]) << "index " << idx << " duplicated";
    seen[idx] = true;
  };
  for (auto p : {Phase::kA, Phase::kB, Phase::kC}) {
    mark(vars.gen_p(0, p));
    mark(vars.gen_q(0, p));
    mark(vars.bus_w(0, p));
    mark(vars.bus_w(1, p));
    mark(vars.load_pb(0, p));
    mark(vars.load_qb(0, p));
    mark(vars.load_pd(0, p));
    mark(vars.load_qd(0, p));
    mark(vars.flow_pf(0, p));
    mark(vars.flow_qf(0, p));
    mark(vars.flow_pt(0, p));
    mark(vars.flow_qt(0, p));
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(VariableIndexTest, KindAndComponentRoundTrip) {
  const Network net = small_net();
  const VariableIndex vars(net);
  const int w1a = vars.bus_w(1, Phase::kA);
  EXPECT_EQ(vars.kind(w1a), VarKind::kBusW);
  EXPECT_EQ(vars.component(w1a), 1);
  EXPECT_EQ(vars.phase(w1a), Phase::kA);

  const int qf = vars.flow_qf(0, Phase::kC);
  EXPECT_EQ(vars.kind(qf), VarKind::kFlowQf);
  EXPECT_EQ(vars.component(qf), 0);
}

TEST(VariableIndexTest, NamesAreHumanReadable) {
  const Network net = dopf::feeders::ieee13();
  const VariableIndex vars(net);
  const int w = vars.bus_w(2, Phase::kA);  // bus "632"
  EXPECT_EQ(vars.name(net, w), "w[632,a]");
  const int pg = vars.gen_p(0, Phase::kB);
  EXPECT_EQ(vars.name(net, pg), "pg[substation,b]");
}

TEST(VariableIndexTest, PaperBlockOrdering) {
  // Generators first, then buses, then loads, then lines.
  const Network net = small_net();
  const VariableIndex vars(net);
  EXPECT_LT(vars.gen_p(0, Phase::kA), vars.bus_w(0, Phase::kA));
  EXPECT_LT(vars.bus_w(1, Phase::kC), vars.load_pb(0, Phase::kA));
  EXPECT_LT(vars.load_qd(0, Phase::kA), vars.flow_pf(0, Phase::kA));
}

}  // namespace
}  // namespace dopf::opf
