#include "feeders/ieee13.hpp"

#include <gtest/gtest.h>

namespace dopf::feeders {
namespace {

using network::Connection;
using network::Network;
using network::PhaseSet;

TEST(Ieee13Test, MatchesPaperComponentGraphCounts) {
  const Network net = ieee13();
  // Table III of the paper: 29 nodes, 28 lines, 7 leaf nodes (the feeder
  // head is degree-1 too but is never merged, so it is not a "leaf").
  EXPECT_EQ(net.num_buses(), 29u);
  EXPECT_EQ(net.num_lines(), 28u);
  std::size_t merged_leaves = 0;
  for (int leaf : net.leaf_buses()) {
    if (leaf != 0) ++merged_leaves;
  }
  EXPECT_EQ(merged_leaves, 7u);
}

TEST(Ieee13Test, IsValidRadialFeeder) {
  const Network net = ieee13();
  EXPECT_NO_THROW(net.validate());
  EXPECT_TRUE(net.is_radial());
}

TEST(Ieee13Test, HasMultiPhaseStructure) {
  const Network net = ieee13();
  std::size_t one = 0, two = 0, three = 0;
  for (const auto& b : net.buses()) {
    switch (b.phases.count()) {
      case 1: ++one; break;
      case 2: ++two; break;
      default: ++three; break;
    }
  }
  EXPECT_GT(one, 0u);
  EXPECT_GT(two, 0u);
  EXPECT_GT(three, 0u);
}

TEST(Ieee13Test, HasWyeAndDeltaAndZipMix) {
  const Network net = ieee13();
  std::size_t delta = 0, wye = 0;
  bool has_const_power = false, has_const_current = false,
       has_const_impedance = false;
  for (const auto& l : net.loads()) {
    (l.connection == Connection::kDelta ? delta : wye) += 1;
    for (auto p : l.phases.phases()) {
      if (l.alpha[p] == 0.0) has_const_power = true;
      if (l.alpha[p] == 1.0) has_const_current = true;
      if (l.alpha[p] == 2.0) has_const_impedance = true;
    }
  }
  EXPECT_GE(delta, 2u);
  EXPECT_GE(wye, 5u);
  EXPECT_TRUE(has_const_power);
  EXPECT_TRUE(has_const_current);
  EXPECT_TRUE(has_const_impedance);
}

TEST(Ieee13Test, SubstationIsPinnedAtBusZero) {
  const Network net = ieee13();
  const auto& root = net.bus(0);
  for (auto p : root.phases.phases()) {
    EXPECT_EQ(root.w_min[p], 1.0);
    EXPECT_EQ(root.w_max[p], 1.0);
  }
  ASSERT_GE(net.num_generators(), 1u);
  EXPECT_EQ(net.generator(0).bus, 0);
}

TEST(Ieee13Test, HasTransformersWithOffNominalTap) {
  const Network net = ieee13();
  std::size_t xfmr = 0;
  bool off_nominal = false;
  for (const auto& l : net.lines()) {
    if (!l.is_transformer) continue;
    ++xfmr;
    for (auto p : l.phases.phases()) {
      if (l.tap_ratio[p] != 1.0) off_nominal = true;
    }
  }
  EXPECT_GE(xfmr, 5u);
  EXPECT_TRUE(off_nominal);  // the substation regulator
}

TEST(Ieee13Test, DeterministicConstruction) {
  const Network a = ieee13();
  const Network b = ieee13();
  ASSERT_EQ(a.num_lines(), b.num_lines());
  for (std::size_t e = 0; e < a.num_lines(); ++e) {
    EXPECT_EQ(a.line(e).r(0, 0), b.line(e).r(0, 0));
  }
}

TEST(Ieee13Test, TotalLoadIsRealistic) {
  const Network net = ieee13();
  double total = 0.0;
  for (const auto& l : net.loads()) {
    for (auto p : l.phases.phases()) total += l.p_ref[p];
  }
  // ~0.5-1.5 pu on the 5 MVA base (the real feeder peaks around 3.5 MW).
  EXPECT_GT(total, 0.3);
  EXPECT_LT(total, 2.0);
}

}  // namespace
}  // namespace dopf::feeders
