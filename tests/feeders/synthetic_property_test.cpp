/// Property sweep over the synthetic-feeder parameter space: for any
/// consistent spec, the generator must hit its structural targets exactly
/// and produce a model that decomposes cleanly.

#include <gtest/gtest.h>

#include <tuple>

#include "feeders/synthetic.hpp"
#include "opf/decompose.hpp"

namespace dopf::feeders {
namespace {

using Params = std::tuple<int /*buses*/, int /*leaves*/, int /*extra*/,
                          double /*keep_phases*/, unsigned /*seed*/>;

class SyntheticSweep : public ::testing::TestWithParam<Params> {};

TEST_P(SyntheticSweep, StructuralInvariantsHold) {
  const auto [buses, leaves, extra, keep, seed] = GetParam();
  SyntheticSpec spec;
  spec.num_buses = buses;
  spec.num_leaves = leaves;
  spec.num_extra_lines = extra;
  spec.keep_phases_prob = keep;
  spec.seed = seed;

  const auto net = synthetic_feeder(spec);
  // Exact structural targets.
  EXPECT_EQ(net.num_buses(), static_cast<std::size_t>(buses));
  EXPECT_EQ(net.num_lines(), static_cast<std::size_t>(buses - 1 + extra));
  std::size_t non_root_leaves = 0;
  for (int leaf : net.leaf_buses()) {
    if (leaf != 0) ++non_root_leaves;
  }
  EXPECT_EQ(non_root_leaves, static_cast<std::size_t>(leaves));
  EXPECT_TRUE(net.is_connected());
  EXPECT_NO_THROW(net.validate());

  // The whole decomposition pipeline must go through:
  const auto problem = dopf::opf::decompose(net);
  // S = nodes + lines - merged leaves (Table III identity).
  EXPECT_EQ(problem.num_components(),
            net.num_buses() + net.num_lines() - non_root_leaves);
  for (int c : problem.copy_count) EXPECT_GE(c, 1);
  for (const auto& comp : problem.components) {
    EXPECT_GT(comp.num_rows(), 0u);
    EXPECT_LE(comp.num_rows(), comp.num_vars());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, SyntheticSweep,
    ::testing::Values(Params{10, 3, 0, 0.5, 1}, Params{25, 8, 0, 0.9, 2},
                      Params{25, 8, 5, 0.1, 3}, Params{60, 20, 0, 0.5, 4},
                      Params{60, 58, 0, 0.5, 5},   // max leaves
                      Params{60, 1, 0, 0.5, 6},    // pure chain
                      Params{120, 30, 12, 0.3, 7},
                      Params{120, 30, 12, 0.3, 8},  // same spec, other seed
                      Params{200, 70, 20, 0.15, 9},
                      Params{3, 1, 0, 0.5, 10}));   // minimum size

}  // namespace
}  // namespace dopf::feeders
