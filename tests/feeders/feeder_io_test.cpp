#include "feeders/feeder_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "feeders/ieee13.hpp"
#include "feeders/synthetic.hpp"

namespace dopf::feeders {
namespace {

using network::Network;

void expect_networks_equal(const Network& a, const Network& b) {
  ASSERT_EQ(a.num_buses(), b.num_buses());
  ASSERT_EQ(a.num_generators(), b.num_generators());
  ASSERT_EQ(a.num_loads(), b.num_loads());
  ASSERT_EQ(a.num_lines(), b.num_lines());
  for (std::size_t i = 0; i < a.num_buses(); ++i) {
    EXPECT_EQ(a.bus(i).name, b.bus(i).name);
    EXPECT_EQ(a.bus(i).phases, b.bus(i).phases);
    for (auto p : a.bus(i).phases.phases()) {
      EXPECT_EQ(a.bus(i).w_min[p], b.bus(i).w_min[p]);
      EXPECT_EQ(a.bus(i).w_max[p], b.bus(i).w_max[p]);
      EXPECT_EQ(a.bus(i).b_shunt[p], b.bus(i).b_shunt[p]);
    }
  }
  for (std::size_t i = 0; i < a.num_generators(); ++i) {
    EXPECT_EQ(a.generator(i).bus, b.generator(i).bus);
    EXPECT_EQ(a.generator(i).cost, b.generator(i).cost);
    for (auto p : a.generator(i).phases.phases()) {
      EXPECT_EQ(a.generator(i).p_max[p], b.generator(i).p_max[p]);
      EXPECT_EQ(a.generator(i).q_min[p], b.generator(i).q_min[p]);
    }
  }
  for (std::size_t i = 0; i < a.num_loads(); ++i) {
    EXPECT_EQ(a.load(i).bus, b.load(i).bus);
    EXPECT_EQ(a.load(i).connection, b.load(i).connection);
    for (auto p : a.load(i).phases.phases()) {
      EXPECT_EQ(a.load(i).p_ref[p], b.load(i).p_ref[p]);
      EXPECT_EQ(a.load(i).alpha[p], b.load(i).alpha[p]);
    }
  }
  for (std::size_t i = 0; i < a.num_lines(); ++i) {
    EXPECT_EQ(a.line(i).from_bus, b.line(i).from_bus);
    EXPECT_EQ(a.line(i).to_bus, b.line(i).to_bus);
    EXPECT_EQ(a.line(i).is_transformer, b.line(i).is_transformer);
    for (auto p : a.line(i).phases.phases()) {
      EXPECT_EQ(a.line(i).tap_ratio[p], b.line(i).tap_ratio[p]);
      for (auto q : a.line(i).phases.phases()) {
        EXPECT_EQ(a.line(i).r(p, q), b.line(i).r(p, q));
        EXPECT_EQ(a.line(i).x(p, q), b.line(i).x(p, q));
      }
    }
  }
}

TEST(FeederIoTest, Ieee13RoundTripsLosslessly) {
  const Network original = ieee13();
  std::stringstream buffer;
  write_feeder(original, buffer);
  const Network parsed = read_feeder(buffer);
  expect_networks_equal(original, parsed);
}

TEST(FeederIoTest, SyntheticRoundTripsLosslessly) {
  SyntheticSpec spec;
  spec.num_buses = 40;
  spec.num_leaves = 10;
  spec.num_extra_lines = 3;
  spec.seed = 99;
  const Network original = synthetic_feeder(spec);
  std::stringstream buffer;
  write_feeder(original, buffer);
  const Network parsed = read_feeder(buffer);
  expect_networks_equal(original, parsed);
}

TEST(FeederIoTest, InfinityBoundsSurviveRoundTrip) {
  const Network original = ieee13();
  std::stringstream buffer;
  write_feeder(original, buffer);
  const Network parsed = read_feeder(buffer);
  // The substation generator has infinite bounds.
  EXPECT_GE(parsed.generator(0).p_max[network::Phase::kA],
            network::kInfinity / 2);
  EXPECT_LE(parsed.generator(0).q_min[network::Phase::kA],
            -network::kInfinity / 2);
}

TEST(FeederIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "feeder v1\n"
      "# a comment line\n"
      "\n"
      "bus a abc 1 1 1 1 1 1 0 0 0 0 0 0   # trailing comment\n"
      "bus b abc 0.9 0.9 0.9 1.1 1.1 1.1 0 0 0 0 0 0\n"
      "gen g a abc 0 0 0 inf inf inf -inf -inf -inf inf inf inf 1\n"
      "line l a b abc 0 1 1 1 inf inf inf "
      "0.01 0 0 0 0.01 0 0 0 0.01 0.02 0 0 0 0.02 0 0 0 0.02 "
      "0 0 0 0 0 0 0 0 0 0 0 0\n");
  const Network net = read_feeder(in);
  EXPECT_EQ(net.num_buses(), 2u);
  EXPECT_EQ(net.num_lines(), 1u);
}

TEST(FeederIoTest, MissingHeaderThrows) {
  std::stringstream in("bus a abc 1 1 1 1 1 1 0 0 0 0 0 0\n");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(FeederIoTest, EmptyFileThrows) {
  std::stringstream in("");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(FeederIoTest, UnknownBusReferenceThrows) {
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 1 1 1 0 0 0 0 0 0\n"
      "gen g nosuchbus abc 0 0 0 1 1 1 -1 -1 -1 1 1 1 1\n");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(FeederIoTest, DuplicateBusNameThrows) {
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 1 1 1 0 0 0 0 0 0\n"
      "bus a abc 1 1 1 1 1 1 0 0 0 0 0 0\n");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(FeederIoTest, BadNumberReportsLine) {
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 oops 1 1 0 0 0 0 0 0\n");
  try {
    read_feeder(in);
    FAIL() << "expected FeederFormatError";
  } catch (const FeederFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(FeederIoTest, NanValueReportsLineAndField) {
  // Raw IEEE NaN is always corrupt input ("inf" is the only sanctioned
  // non-finite spelling, mapped to the kInfinity sentinel); the parser must
  // reject it with the line number instead of letting it poison the model.
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 1 1 1 0 0 0 0 0 0\n"
      "load d a abc wye 0 0 0 0 0 0 nan 0 0 0 0 0\n");
  try {
    read_feeder(in);
    FAIL() << "expected FeederFormatError";
  } catch (const FeederFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
  }
}

TEST(FeederIoTest, UppercaseNanRejectedToo) {
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 NAN 1 1 0 0 0 0 0 0\n");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(FeederIoTest, OverflowingLiteralReportsLine) {
  // 1e999 overflows to infinity during parsing; it must be rejected like
  // any other malformed number, with provenance.
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 1e999 1 1 0 0 0 0 0 0\n");
  try {
    read_feeder(in);
    FAIL() << "expected FeederFormatError";
  } catch (const FeederFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(FeederIoTest, TrailingGarbageOnNumberRejected) {
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 1.5x 1 1 0 0 0 0 0 0\n");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(FeederIoTest, BadConnectionKeywordThrows) {
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 1 1 1 0 0 0 0 0 0\n"
      "load l a abc star 0 0 0 0 0 0 1 1 1 0 0 0\n");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(FeederIoTest, SaveAndLoadFile) {
  const Network original = ieee13();
  const std::string path = ::testing::TempDir() + "/ieee13_roundtrip.feeder";
  save_feeder(original, path);
  const Network parsed = load_feeder(path);
  expect_networks_equal(original, parsed);
}

TEST(FeederIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_feeder("/nonexistent/path/feeder.txt"), FeederFormatError);
}

}  // namespace
}  // namespace dopf::feeders
