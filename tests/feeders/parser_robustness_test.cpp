/// Robustness of the feeder parser against malformed input: every corrupted
/// variant must raise FeederFormatError (never crash, never silently accept).

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "feeders/feeder_io.hpp"
#include "feeders/ieee13.hpp"

namespace dopf::feeders {
namespace {

std::string valid_text() {
  std::stringstream out;
  write_feeder(ieee13(), out);
  return out.str();
}

TEST(ParserRobustnessTest, TruncatedFileThrows) {
  const std::string text = valid_text();
  // Cut the file in the middle of a record.
  for (double frac : {0.31, 0.53, 0.77, 0.95}) {
    const std::string cut =
        text.substr(0, static_cast<std::size_t>(text.size() * frac));
    std::stringstream in(cut);
    EXPECT_THROW(read_feeder(in), FeederFormatError) << "fraction " << frac;
  }
}

TEST(ParserRobustnessTest, TokenDeletionThrows) {
  // Remove one token from a line: the record becomes short and must fail.
  const std::string text = valid_text();
  std::stringstream lines(text);
  std::string line;
  std::vector<std::string> all;
  while (std::getline(lines, line)) all.push_back(line);
  std::mt19937 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> corrupted = all;
    std::size_t victim = 1 + rng() % (corrupted.size() - 1);
    // Drop the last whitespace-separated token.
    const std::size_t pos = corrupted[victim].find_last_of(' ');
    if (pos == std::string::npos) continue;
    corrupted[victim].resize(pos);
    std::string joined;
    for (const auto& l : corrupted) joined += l + "\n";
    std::stringstream in(joined);
    EXPECT_THROW(read_feeder(in), FeederFormatError) << "line " << victim;
  }
}

TEST(ParserRobustnessTest, RandomBinaryGarbageThrows) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::string garbage(200 + rng() % 300, '\0');
    for (char& c : garbage) c = static_cast<char>(rng() % 256);
    std::stringstream in(garbage);
    EXPECT_THROW(read_feeder(in), std::exception) << "trial " << trial;
  }
}

TEST(ParserRobustnessTest, WrongVersionRejected) {
  std::stringstream in("feeder v2\n");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(ParserRobustnessTest, NumberOverflowHandled) {
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1e999 1 1 1 1 1 0 0 0 0 0 0\n");
  // 1e999 overflows to out-of-range; the parser must reject, not UB.
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(ParserRobustnessTest, PhaseGarbageRejected) {
  std::stringstream in(
      "feeder v1\n"
      "bus a xyz 1 1 1 1 1 1 0 0 0 0 0 0\n");
  EXPECT_THROW(read_feeder(in), FeederFormatError);
}

TEST(ParserRobustnessTest, OutOfRangePhaseReportsLineAndToken) {
  // A phase character outside {a,b,c} must surface as a FeederFormatError
  // with the line number and the offending token — not as the raw
  // std::invalid_argument escaping from PhaseSet::parse.
  std::stringstream in(
      "feeder v1\n"
      "bus root abd 1 1 1 1 1 1 0 0 0 0 0 0\n");
  try {
    read_feeder(in);
    FAIL() << "out-of-range phase accepted";
  } catch (const FeederFormatError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("feeder line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad phase set 'abd'"), std::string::npos) << msg;
  }
}

TEST(ParserRobustnessTest, DuplicateBusIdReportsName) {
  std::stringstream in(
      "feeder v1\n"
      "bus root abc 1 1 1 1 1 1 0 0 0 0 0 0\n"
      "bus root abc 1 1 1 1 1 1 0 0 0 0 0 0\n");
  try {
    read_feeder(in);
    FAIL() << "duplicate bus id accepted";
  } catch (const FeederFormatError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate bus root"), std::string::npos) << msg;
    EXPECT_NE(msg.find("feeder line 3"), std::string::npos) << msg;
  }
}

TEST(ParserRobustnessTest, TruncatedLineRecordReportsLine) {
  // Chop a line record mid-matrix: the error must carry the line number.
  const std::string text = valid_text();
  const std::size_t line_pos = text.find("\nline ");
  ASSERT_NE(line_pos, std::string::npos);
  const std::size_t line_end = text.find('\n', line_pos + 1);
  ASSERT_NE(line_end, std::string::npos);
  // Keep the first half of the first 'line' record, drop the rest of the file.
  const std::string cut =
      text.substr(0, line_pos + (line_end - line_pos) / 2);
  std::stringstream in(cut);
  try {
    read_feeder(in);
    FAIL() << "truncated record accepted";
  } catch (const FeederFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("feeder line"), std::string::npos)
        << e.what();
  }
}

TEST(ParserRobustnessTest, SemanticallyInvalidNetworkRejected) {
  // Parses fine, but fails network validation (no generator).
  std::stringstream in(
      "feeder v1\n"
      "bus a abc 1 1 1 1 1 1 0 0 0 0 0 0\n");
  EXPECT_THROW(read_feeder(in), std::exception);
}

}  // namespace
}  // namespace dopf::feeders
