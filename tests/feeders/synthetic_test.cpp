#include "feeders/synthetic.hpp"

#include <gtest/gtest.h>

namespace dopf::feeders {
namespace {

using network::Connection;
using network::Network;

std::size_t non_root_leaves(const Network& net) {
  std::size_t count = 0;
  for (int leaf : net.leaf_buses()) {
    if (leaf != 0) ++count;
  }
  return count;
}

TEST(SyntheticTest, HitsExactCountsSmall) {
  SyntheticSpec spec;
  spec.num_buses = 50;
  spec.num_leaves = 12;
  spec.num_extra_lines = 5;
  spec.seed = 7;
  const Network net = synthetic_feeder(spec);
  EXPECT_EQ(net.num_buses(), 50u);
  EXPECT_EQ(net.num_lines(), 49u + 5u);
  EXPECT_EQ(non_root_leaves(net), 12u);
  EXPECT_NO_THROW(net.validate());
}

TEST(SyntheticTest, Ieee123SpecMatchesTable3) {
  const Network net = synthetic_feeder(ieee123_spec());
  EXPECT_EQ(net.num_buses(), 147u);   // nodes
  EXPECT_EQ(net.num_lines(), 146u);   // lines
  EXPECT_EQ(non_root_leaves(net), 43u);
  EXPECT_TRUE(net.is_radial());
}

TEST(SyntheticTest, Ieee8500MiniSpecCounts) {
  const Network net = synthetic_feeder(ieee8500_mini_spec());
  EXPECT_EQ(net.num_buses(), 1194u);
  EXPECT_EQ(net.num_lines(), 1193u + 236u);
  EXPECT_EQ(non_root_leaves(net), 123u);
  EXPECT_FALSE(net.is_radial());  // ties make it meshed
  EXPECT_TRUE(net.is_connected());
}

TEST(SyntheticTest, DeterministicForFixedSeed) {
  const Network a = synthetic_feeder(ieee123_spec());
  const Network b = synthetic_feeder(ieee123_spec());
  ASSERT_EQ(a.num_loads(), b.num_loads());
  for (std::size_t i = 0; i < a.num_loads(); ++i) {
    EXPECT_EQ(a.load(i).bus, b.load(i).bus);
    for (auto p : a.load(i).phases.phases()) {
      EXPECT_EQ(a.load(i).p_ref[p], b.load(i).p_ref[p]);
    }
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec s1 = ieee123_spec();
  SyntheticSpec s2 = ieee123_spec();
  s2.seed += 1;
  const Network a = synthetic_feeder(s1);
  const Network b = synthetic_feeder(s2);
  // Same exact counts by construction...
  EXPECT_EQ(a.num_buses(), b.num_buses());
  // ...but different structure.
  bool differs = a.num_loads() != b.num_loads();
  for (std::size_t e = 0; !differs && e < a.num_lines(); ++e) {
    differs = a.line(e).to_bus != b.line(e).to_bus;
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticTest, GuaranteesMinimumDeltaLoads) {
  SyntheticSpec spec = ieee123_spec();
  spec.delta_prob = 0.0;  // no random deltas...
  spec.min_delta_loads = 3;
  const Network net = synthetic_feeder(spec);
  std::size_t delta = 0;
  for (const auto& l : net.loads()) {
    if (l.connection == Connection::kDelta) ++delta;
  }
  EXPECT_GE(delta, 3u);  // ...but the floor is enforced
}

TEST(SyntheticTest, RootIsPinnedThreePhaseSubstation) {
  const Network net = synthetic_feeder(ieee123_spec());
  EXPECT_EQ(net.bus(0).phases.count(), 3u);
  for (auto p : net.bus(0).phases.phases()) {
    EXPECT_EQ(net.bus(0).w_min[p], 1.0);
    EXPECT_EQ(net.bus(0).w_max[p], 1.0);
  }
  EXPECT_EQ(net.generator(0).bus, 0);
}

TEST(SyntheticTest, PhaseConsistencyHoldsEverywhere) {
  const Network net = synthetic_feeder(ieee8500_mini_spec());
  for (const auto& l : net.lines()) {
    EXPECT_TRUE(l.phases.subset_of(net.bus(l.from_bus).phases));
    EXPECT_TRUE(l.phases.subset_of(net.bus(l.to_bus).phases));
  }
}

TEST(SyntheticTest, PredominantlySinglePhaseFor8500Class) {
  const Network net = synthetic_feeder(ieee8500_mini_spec());
  std::size_t single = 0;
  for (const auto& b : net.buses()) {
    if (b.phases.count() == 1) ++single;
  }
  EXPECT_GT(single, net.num_buses() / 2);
}

TEST(SyntheticTest, RejectsInconsistentCounts) {
  SyntheticSpec spec;
  spec.num_buses = 10;
  spec.num_leaves = 9;  // > num_buses - 2
  EXPECT_THROW(synthetic_feeder(spec), std::invalid_argument);
  spec.num_leaves = 0;
  EXPECT_THROW(synthetic_feeder(spec), std::invalid_argument);
  spec.num_buses = 2;
  spec.num_leaves = 1;
  EXPECT_THROW(synthetic_feeder(spec), std::invalid_argument);
}

TEST(SyntheticTest, ConductorSizingKeepsTrunkResistanceLow) {
  // Lines closer to the root carry more load and must have lower
  // resistance than typical leaf laterals.
  const Network net = synthetic_feeder(ieee123_spec());
  const auto& trunk = net.line(0);  // sub -> n1 carries everything
  double trunk_r = 0.0;
  for (auto p : trunk.phases.phases()) {
    trunk_r = std::max(trunk_r, trunk.r(p, p));
  }
  double max_r = 0.0;
  for (const auto& l : net.lines()) {
    for (auto p : l.phases.phases()) max_r = std::max(max_r, l.r(p, p));
  }
  EXPECT_LT(trunk_r, max_r / 5.0);
}

}  // namespace
}  // namespace dopf::feeders
