/// Degraded-mode consensus on the simulated multi-device solver: a
/// persistently slow device is carried with stale contributions up to the
/// staleness bound, quarantined past it, readmitted after probation when it
/// recovers, and the whole schedule is deterministic. A healthy run with
/// degrade enabled stays bit-identical to one without.

#include <gtest/gtest.h>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "runtime/fault.hpp"
#include "runtime/health.hpp"
#include "simt/multi_gpu.hpp"

namespace dopf::simt {
namespace {

using dopf::core::AdmmResult;
using dopf::core::AdmmStatus;
using dopf::runtime::DeviceState;
using dopf::runtime::FaultPlan;

const dopf::opf::DistributedProblem& problem() {
  static const auto net = dopf::feeders::ieee13();
  static const auto p = dopf::opf::decompose(net);
  return p;
}

MultiGpuOptions base_options(int max_iters = 5000) {
  MultiGpuOptions mo;
  mo.gpu.admm.max_iterations = max_iters;
  mo.gpu.admm.check_every = 10;
  mo.num_devices = 3;
  return mo;
}

void expect_identical_run(const AdmmResult& a, const AdmmResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.status, b.status);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t t = 0; t < a.history.size(); ++t) {
    ASSERT_EQ(a.history[t].primal_residual, b.history[t].primal_residual)
        << "record " << t;
    ASSERT_EQ(a.history[t].dual_residual, b.history[t].dual_residual)
        << "record " << t;
  }
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    ASSERT_EQ(a.x[i], b.x[i]) << "entry " << i;
  }
}

TEST(DegradeTest, PersistentStragglerTerminatesUnderDegrade) {
  // Without a `until=`, the straggler never recovers: the run must still
  // terminate (no livelock), quarantine the device exactly once, and flag
  // the affected iterations in the timing breakdown.
  auto mo = base_options();
  mo.faults = FaultPlan::parse("straggle:device=1,from=30,factor=64");
  mo.degrade.enabled = true;
  MultiGpuSolverFreeAdmm admm(problem(), mo);
  const AdmmResult res = admm.solve();

  EXPECT_TRUE(res.converged) << to_string(res.status);
  EXPECT_GT(admm.degraded_iterations(), 0);
  EXPECT_EQ(admm.quarantines(), 1);
  EXPECT_EQ(admm.readmissions(), 0);
  EXPECT_EQ(admm.device_health(1).state(), DeviceState::kQuarantined);
  EXPECT_EQ(res.timing.degraded_iterations, admm.degraded_iterations());
  EXPECT_GT(res.timing.degrade, 0.0);
  EXPECT_EQ(admm.failovers(), 0);  // degrade handled it, not failover
}

TEST(DegradeTest, DegradedScheduleIsDeterministic) {
  auto make = [] {
    auto mo = base_options();
    mo.faults = FaultPlan::parse("straggle:device=1,from=30,factor=64");
    mo.degrade.enabled = true;
    return mo;
  };
  MultiGpuSolverFreeAdmm a(problem(), make());
  MultiGpuSolverFreeAdmm b(problem(), make());
  const AdmmResult ra = a.solve();
  const AdmmResult rb = b.solve();
  expect_identical_run(ra, rb);
  EXPECT_EQ(a.degraded_iterations(), b.degraded_iterations());
  EXPECT_EQ(a.quarantines(), b.quarantines());
  EXPECT_EQ(a.readmissions(), b.readmissions());
  EXPECT_EQ(a.degrade_seconds(), b.degrade_seconds());
}

TEST(DegradeTest, BoundedStragglerIsQuarantinedThenReadmitted) {
  // The straggle window closes at iteration 120: the device is quarantined
  // once the staleness bound is exhausted, earns readmission through a
  // clean probation streak, and finishes the run as a participant.
  auto mo = base_options();
  mo.faults = FaultPlan::parse("straggle:device=1,from=30,until=120,factor=64");
  mo.degrade.enabled = true;
  MultiGpuSolverFreeAdmm admm(problem(), mo);
  const AdmmResult res = admm.solve();

  EXPECT_TRUE(res.converged) << to_string(res.status);
  EXPECT_EQ(admm.quarantines(), 1);
  EXPECT_EQ(admm.readmissions(), 1);
  EXPECT_TRUE(admm.device_health(1).participating());
  EXPECT_GT(admm.degraded_iterations(), 0);
}

TEST(DegradeTest, StalenessBoundControlsQuarantine) {
  // A short straggle burst that fits inside a generous staleness bound is
  // ridden out with stale contributions only — no quarantine at all.
  auto mo = base_options();
  mo.faults = FaultPlan::parse("straggle:device=2,from=40,until=50,factor=64");
  mo.degrade.enabled = true;
  mo.degrade.staleness_bound = 100;
  MultiGpuSolverFreeAdmm admm(problem(), mo);
  const AdmmResult res = admm.solve();

  EXPECT_TRUE(res.converged) << to_string(res.status);
  EXPECT_EQ(admm.quarantines(), 0);
  EXPECT_EQ(admm.readmissions(), 0);
  EXPECT_GT(admm.degraded_iterations(), 0);
  EXPECT_TRUE(admm.device_health(2).participating());
}

TEST(DegradeTest, HealthyRunWithDegradeEnabledIsByteIdentical) {
  // Enabling the policy must cost nothing on a healthy fleet: same
  // trajectory, bit for bit, and zero degraded iterations.
  MultiGpuSolverFreeAdmm plain(problem(), base_options());
  const AdmmResult ref = plain.solve();

  auto mo = base_options();
  mo.degrade.enabled = true;
  MultiGpuSolverFreeAdmm guarded(problem(), mo);
  const AdmmResult res = guarded.solve();

  expect_identical_run(ref, res);
  EXPECT_EQ(guarded.degraded_iterations(), 0);
  EXPECT_EQ(guarded.quarantines(), 0);
  EXPECT_EQ(guarded.degrade_seconds(), 0.0);
}

TEST(DegradeTest, PersistentStragglerWithoutDegradeOnlyCostsTime) {
  // Control: with the policy off, a persistent straggler is the PR-3
  // behavior — simulated time grows, the math is untouched.
  MultiGpuSolverFreeAdmm clean(problem(), base_options(120));
  const AdmmResult ref = clean.solve();

  auto mo = base_options(120);
  mo.faults = FaultPlan::parse("straggle:device=1,from=30,factor=64");
  MultiGpuSolverFreeAdmm faulted(problem(), mo);
  const AdmmResult res = faulted.solve();

  expect_identical_run(ref, res);
  EXPECT_EQ(faulted.degraded_iterations(), 0);
  EXPECT_GT(res.timing.local_update, ref.timing.local_update);
}

TEST(DegradeTest, DegradedSolutionStaysCloseToClean) {
  // Stale contributions perturb the trajectory, but the fixed point is the
  // same problem: the degraded solution must agree with the clean one to
  // engineering accuracy.
  MultiGpuSolverFreeAdmm clean(problem(), base_options());
  const AdmmResult ref = clean.solve();
  ASSERT_TRUE(ref.converged);

  auto mo = base_options();
  mo.faults = FaultPlan::parse("straggle:device=1,from=30,factor=64");
  mo.degrade.enabled = true;
  MultiGpuSolverFreeAdmm degraded(problem(), mo);
  const AdmmResult res = degraded.solve();
  ASSERT_TRUE(res.converged);

  double worst = 0.0;
  ASSERT_EQ(res.x.size(), ref.x.size());
  for (std::size_t i = 0; i < ref.x.size(); ++i) {
    const double denom =
        std::max({1.0, std::abs(ref.x[i]), std::abs(res.x[i])});
    worst = std::max(worst, std::abs(ref.x[i] - res.x[i]) / denom);
  }
  EXPECT_LT(worst, 5e-2);
  EXPECT_NEAR(res.objective, ref.objective,
              5e-2 * (1.0 + std::abs(ref.objective)));
}

TEST(DegradeTest, RepeatedFailuresQuarantineWithoutStraggle) {
  // Persistent message drops past the retry budget are absorbed as stale
  // iterations and eventually tip the health tracker into quarantine —
  // degrade mode must not fall back to checkpoint failover for this.
  auto mo = base_options();
  mo.faults = FaultPlan::parse("drop:device=2,from=30");
  mo.recovery.max_retries = 2;
  mo.degrade.enabled = true;
  MultiGpuSolverFreeAdmm admm(problem(), mo);
  const AdmmResult res = admm.solve();

  EXPECT_TRUE(res.converged) << to_string(res.status);
  EXPECT_EQ(admm.quarantines(), 1);
  EXPECT_EQ(admm.failovers(), 0);
  EXPECT_GT(admm.degraded_iterations(), 0);
}

}  // namespace
}  // namespace dopf::simt
