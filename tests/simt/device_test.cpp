#include "simt/device.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dopf::simt {
namespace {

TEST(DeviceTest, LaunchExecutesEveryBlockExactlyOnce) {
  Device dev;
  std::vector<int> hits(10, 0);
  dev.launch("k", 10, 32, [&](BlockContext& ctx) {
    ++hits[ctx.block_index];
    EXPECT_EQ(ctx.threads, 32);
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(DeviceTest, LaunchChargesAtLeastOverhead) {
  Device dev;
  dev.launch("k", 1, 1, [](BlockContext&) {});
  EXPECT_GE(dev.ledger().kernel_seconds,
            dev.spec().kernel_launch_us * 1e-6);
  EXPECT_EQ(dev.ledger().by_kernel.at("k"), dev.ledger().kernel_seconds);
}

TEST(DeviceTest, ChargeScalesWithRounds) {
  // ceil(items / threads) rounds: 64 items on 16 threads = 4 rounds, on 64
  // threads = 1 round -> 4x the per-block time.
  Device dev;
  BlockContext c16;
  c16.threads = 16;
  BlockContext c64;
  c64.threads = 64;
  // Need the device's coefficients: route through launch.
  double t16 = 0.0, t64 = 0.0;
  dev.launch("a", 1, 16, [&](BlockContext& ctx) {
    ctx.charge(64, 10.0, 100.0);
    t16 = ctx.seconds;
  });
  dev.launch("b", 1, 64, [&](BlockContext& ctx) {
    ctx.charge(64, 10.0, 100.0);
    t64 = ctx.seconds;
  });
  EXPECT_NEAR(t16, 4.0 * t64, 1e-15);
}

TEST(DeviceTest, ZeroItemsChargeNothing) {
  Device dev;
  dev.launch("k", 1, 32, [&](BlockContext& ctx) {
    ctx.charge(0, 100.0, 100.0);
    EXPECT_EQ(ctx.seconds, 0.0);
  });
}

TEST(DeviceTest, MakespanUsesWorkSpanModel) {
  // Many equal blocks: total/concurrency dominates; one huge block: span
  // dominates.
  DeviceSpec spec;
  spec.kernel_launch_us = 0.0;
  Device dev(spec);
  const int conc = dev.concurrent_blocks(32);
  // 2*conc identical blocks -> time ~ 2 * block_time.
  dev.launch("flat", 2 * conc, 32, [](BlockContext& ctx) {
    ctx.charge(32, 100.0, 0.0);
  });
  const double flat = dev.ledger().by_kernel.at("flat");
  // Same total work in one block -> time = that block's time (span).
  dev.launch("spike", 1, 32, [&](BlockContext& ctx) {
    ctx.charge(32, 100.0 * 2 * conc, 0.0);
  });
  const double spike = dev.ledger().by_kernel.at("spike");
  EXPECT_GT(spike, flat * (conc / 2.0));
}

TEST(DeviceTest, ConcurrencyDecreasesWithBlockSize) {
  Device dev;
  EXPECT_GE(dev.concurrent_blocks(32), dev.concurrent_blocks(1024));
  EXPECT_GE(dev.concurrent_blocks(1), 1);
}

TEST(DeviceTest, TransferCostsLatencyPlusBandwidth) {
  Device dev;
  dev.record_transfer(0);
  const double lat = dev.ledger().transfer_seconds;
  EXPECT_NEAR(lat, dev.spec().pcie_latency_us * 1e-6, 1e-12);
  dev.record_transfer(1'000'000'000);  // 1 GB
  EXPECT_NEAR(dev.ledger().transfer_seconds - lat,
              lat + 1.0 / dev.spec().pcie_bandwidth_gb_s, 1e-9);
}

TEST(DeviceTest, InvalidLaunchParametersThrow) {
  Device dev;
  EXPECT_THROW(dev.launch("k", 1, 0, [](BlockContext&) {}),
               std::invalid_argument);
  EXPECT_THROW(dev.launch("k", 1, 5000, [](BlockContext&) {}),
               std::invalid_argument);
  EXPECT_THROW(dev.launch("k", -1, 32, [](BlockContext&) {}),
               std::invalid_argument);
}

TEST(DeviceTest, LedgerClearResets) {
  Device dev;
  dev.launch("k", 4, 32, [](BlockContext& ctx) { ctx.charge(8, 1.0, 8.0); });
  dev.record_transfer(100);
  EXPECT_GT(dev.ledger().total(), 0.0);
  dev.ledger().clear();
  EXPECT_EQ(dev.ledger().total(), 0.0);
  EXPECT_TRUE(dev.ledger().by_kernel.empty());
}

TEST(DeviceTest, FasterClockMeansLessTime) {
  DeviceSpec slow;
  slow.clock_ghz = 0.5;
  slow.kernel_launch_us = 0.0;
  DeviceSpec fast = slow;
  fast.clock_ghz = 2.0;
  Device dslow(slow), dfast(fast);
  auto body = [](BlockContext& ctx) { ctx.charge(100, 50.0, 0.0); };
  dslow.launch("k", 10, 32, body);
  dfast.launch("k", 10, 32, body);
  EXPECT_GT(dslow.ledger().kernel_seconds,
            dfast.ledger().kernel_seconds * 3.0);
}

}  // namespace
}  // namespace dopf::simt
