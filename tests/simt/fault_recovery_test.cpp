/// Fault injection and deterministic recovery on the simulated multi-device
/// solver: a killed device fails over from the last checkpoint and the
/// recovered run stays bit-identical to the fault-free one; drops and
/// stragglers move only simulated time; undetected corruption perturbs the
/// trajectory (which is what the golden comparator must catch).

#include <gtest/gtest.h>

#include <cmath>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "simt/multi_gpu.hpp"

namespace dopf::simt {
namespace {

using dopf::core::AdmmResult;
using dopf::core::AdmmStatus;
using dopf::runtime::AdmmCheckpoint;
using dopf::runtime::FaultError;
using dopf::runtime::FaultPlan;

const dopf::opf::DistributedProblem& problem() {
  static const auto net = dopf::feeders::ieee13();
  static const auto p = dopf::opf::decompose(net);
  return p;
}

MultiGpuOptions base_options(int max_iters = 120) {
  MultiGpuOptions mo;
  mo.gpu.admm.max_iterations = max_iters;
  mo.gpu.admm.check_every = 10;
  mo.num_devices = 3;
  return mo;
}

void expect_identical_run(const AdmmResult& a, const AdmmResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.status, b.status);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t t = 0; t < a.history.size(); ++t) {
    ASSERT_EQ(a.history[t].iteration, b.history[t].iteration) << "record " << t;
    ASSERT_EQ(a.history[t].primal_residual, b.history[t].primal_residual)
        << "record " << t;
    ASSERT_EQ(a.history[t].dual_residual, b.history[t].dual_residual)
        << "record " << t;
  }
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    ASSERT_EQ(a.x[i], b.x[i]) << "entry " << i;
  }
}

TEST(FaultRecoveryTest, KillFailoverReplaysBitIdentically) {
  MultiGpuSolverFreeAdmm clean(problem(), base_options());
  const AdmmResult ref = clean.solve();

  auto mo = base_options();
  mo.faults = FaultPlan::parse("kill:device=1,iter=60");
  mo.checkpoint_every = 25;
  MultiGpuSolverFreeAdmm faulted(problem(), mo);
  const AdmmResult res = faulted.solve();

  expect_identical_run(ref, res);
  EXPECT_EQ(faulted.failovers(), 1);
  EXPECT_EQ(faulted.alive_devices(), 2u);
  EXPECT_GT(faulted.recovery_seconds(), 0.0);
  EXPECT_EQ(res.timing.recovery, faulted.recovery_seconds());
  // The replayed iterations make the faulted run's simulated total larger.
  EXPECT_GT(res.timing.total(), ref.timing.total());
}

TEST(FaultRecoveryTest, KillingTheAggregatorFailsOverToo) {
  MultiGpuSolverFreeAdmm clean(problem(), base_options());
  const AdmmResult ref = clean.solve();

  auto mo = base_options();
  mo.faults = FaultPlan::parse("kill:device=0,iter=40");
  mo.checkpoint_every = 20;
  MultiGpuSolverFreeAdmm faulted(problem(), mo);
  const AdmmResult res = faulted.solve();
  expect_identical_run(ref, res);
  EXPECT_EQ(faulted.failovers(), 1);
}

TEST(FaultRecoveryTest, BackToBackKillsSurviveOnTheLastDevice) {
  MultiGpuSolverFreeAdmm clean(problem(), base_options());
  const AdmmResult ref = clean.solve();

  auto mo = base_options();
  mo.faults = FaultPlan::parse("kill:device=1,iter=30;kill:device=2,iter=50");
  mo.checkpoint_every = 10;
  MultiGpuSolverFreeAdmm faulted(problem(), mo);
  const AdmmResult res = faulted.solve();
  expect_identical_run(ref, res);
  EXPECT_EQ(faulted.failovers(), 2);
  EXPECT_EQ(faulted.alive_devices(), 1u);
}

TEST(FaultRecoveryTest, KillWithoutFailoverThrows) {
  auto mo = base_options();
  mo.faults = FaultPlan::parse("kill:device=1,iter=20");
  mo.recovery.failover = false;
  MultiGpuSolverFreeAdmm admm(problem(), mo);
  EXPECT_THROW(admm.solve(), FaultError);
}

TEST(FaultRecoveryTest, RetryBudgetExhaustionEscalatesToFailover) {
  MultiGpuSolverFreeAdmm clean(problem(), base_options());
  const AdmmResult ref = clean.solve();

  auto mo = base_options();
  mo.faults = FaultPlan::parse("drop:device=2,iter=35,count=9");
  mo.recovery.max_retries = 3;
  mo.checkpoint_every = 30;
  MultiGpuSolverFreeAdmm faulted(problem(), mo);
  const AdmmResult res = faulted.solve();
  expect_identical_run(ref, res);
  EXPECT_EQ(faulted.failovers(), 1);
  EXPECT_EQ(faulted.alive_devices(), 2u);
}

TEST(FaultRecoveryTest, DropsAndStragglersMoveOnlySimulatedTime) {
  MultiGpuSolverFreeAdmm clean(problem(), base_options());
  const AdmmResult ref = clean.solve();

  auto mo = base_options();
  mo.faults = FaultPlan::parse(
      "drop:device=1,iter=15,count=2;"
      "straggle:device=2,iter=10,until=40,factor=8");
  MultiGpuSolverFreeAdmm faulted(problem(), mo);
  const AdmmResult res = faulted.solve();

  expect_identical_run(ref, res);
  EXPECT_EQ(faulted.failovers(), 0);
  EXPECT_EQ(faulted.message_retries(), 2);
  EXPECT_GT(res.timing.local_update, ref.timing.local_update);
}

TEST(FaultRecoveryTest, DetectedCorruptionIsResentIntact) {
  MultiGpuSolverFreeAdmm clean(problem(), base_options());
  const AdmmResult ref = clean.solve();

  auto mo = base_options();
  mo.faults = FaultPlan::parse("corrupt:device=1,iter=25,scale=64");
  MultiGpuSolverFreeAdmm faulted(problem(), mo);  // verify_messages default on
  const AdmmResult res = faulted.solve();
  expect_identical_run(ref, res);
  EXPECT_EQ(faulted.message_retries(), 1);
}

TEST(FaultRecoveryTest, UndetectedCorruptionPerturbsTheTrajectory) {
  MultiGpuSolverFreeAdmm clean(problem(), base_options());
  const AdmmResult ref = clean.solve();

  auto mo = base_options();
  mo.faults = FaultPlan::parse("corrupt:device=1,iter=25,scale=64");
  mo.recovery.verify_messages = false;
  MultiGpuSolverFreeAdmm faulted(problem(), mo);
  const AdmmResult res = faulted.solve();

  bool differs = false;
  for (std::size_t i = 0; i < ref.x.size() && !differs; ++i) {
    differs = ref.x[i] != res.x[i];
  }
  EXPECT_TRUE(differs)
      << "a corrupted consensus payload must leave a detectable footprint";
}

TEST(FaultRecoveryTest, CheckpointFromCoreSolverResumesMultiGpu) {
  // Cross-backend restart: capture the serial solver's state at iteration
  // 50, restore it into the multi-device solver, and finish. The combined
  // trajectory must equal the uninterrupted multi-device run bit for bit.
  auto mo = base_options(100);
  MultiGpuSolverFreeAdmm full(problem(), mo);
  const AdmmResult ref = full.solve();

  dopf::core::AdmmOptions opt;
  opt.max_iterations = 50;
  opt.check_every = 10;
  dopf::core::SolverFreeAdmm serial(problem(), opt);
  AdmmCheckpoint ck;
  serial.set_checkpoint_hook(
      50, [&](const dopf::core::SolverFreeAdmm& solver, int iteration) {
        ck = AdmmCheckpoint::capture(solver, iteration, "ieee13");
      });
  serial.solve();
  ASSERT_EQ(ck.iteration, 50);

  MultiGpuSolverFreeAdmm resumed(problem(), mo);
  resumed.restore_state(ck);
  const AdmmResult res = resumed.solve();
  EXPECT_EQ(res.iterations, ref.iterations);
  ASSERT_EQ(res.x.size(), ref.x.size());
  for (std::size_t i = 0; i < ref.x.size(); ++i) {
    ASSERT_EQ(res.x[i], ref.x[i]) << "entry " << i;
  }
  ASSERT_FALSE(res.history.empty());
  EXPECT_GT(res.history.front().iteration, 50);
}

TEST(FaultRecoveryTest, ConvergedRunsReportConvergedStatus) {
  MultiGpuOptions mo;
  mo.gpu.admm.check_every = 10;
  mo.num_devices = 2;
  MultiGpuSolverFreeAdmm admm(problem(), mo);
  const AdmmResult res = admm.solve();
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.status, AdmmStatus::kConverged);
}

TEST(FaultRecoveryTest, PeriodicCheckpointWritesFile) {
  auto mo = base_options(60);
  mo.checkpoint_every = 20;
  mo.checkpoint_path = ::testing::TempDir() + "/dopf_mgpu_test.ckpt";
  mo.label = "ieee13";
  MultiGpuSolverFreeAdmm admm(problem(), mo);
  admm.solve();
  const AdmmCheckpoint ck = dopf::runtime::load_checkpoint(mo.checkpoint_path);
  EXPECT_EQ(ck.label, "ieee13");
  EXPECT_EQ(ck.iteration, 60);
  EXPECT_EQ(ck.x.size(), problem().num_vars);
}

}  // namespace
}  // namespace dopf::simt
