#include "simt/multi_gpu.hpp"

#include <gtest/gtest.h>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "feeders/synthetic.hpp"
#include "opf/decompose.hpp"

namespace dopf::simt {
namespace {

using dopf::core::AdmmOptions;

struct Fixture {
  dopf::network::Network net = dopf::feeders::ieee13();
  dopf::opf::DistributedProblem problem = dopf::opf::decompose(net);
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

MultiGpuOptions make_options(std::size_t devices, int max_iters = 150) {
  MultiGpuOptions mo;
  mo.gpu.admm.max_iterations = max_iters;
  mo.gpu.admm.check_every = 50;
  mo.num_devices = devices;
  return mo;
}

TEST(MultiGpuTest, BitIdenticalToSingleDeviceAndCpu) {
  AdmmOptions opt;
  opt.max_iterations = 150;
  opt.check_every = 50;
  dopf::core::SolverFreeAdmm cpu(fixture().problem, opt);
  const auto rc = cpu.solve();
  for (std::size_t devices : {1u, 2u, 4u, 7u}) {
    MultiGpuSolverFreeAdmm gpu(fixture().problem, make_options(devices));
    const auto rg = gpu.solve();
    ASSERT_EQ(rc.x.size(), rg.x.size());
    for (std::size_t i = 0; i < rc.x.size(); ++i) {
      ASSERT_EQ(rc.x[i], rg.x[i]) << devices << " devices, entry " << i;
    }
  }
}

TEST(MultiGpuTest, DevicesExceedingComponentsMatchSingleDevice) {
  // More devices than components: the trailing devices own an empty
  // partition. They must neither crash nor perturb a single bit of the
  // trajectory relative to the one-device run.
  const auto& problem = fixture().problem;
  const std::size_t devices = problem.num_components() + 5;

  MultiGpuSolverFreeAdmm single(problem, make_options(1, 40));
  const auto rs = single.solve();
  MultiGpuSolverFreeAdmm over(problem, make_options(devices, 40));
  const auto ro = over.solve();

  EXPECT_EQ(over.num_devices(), devices);
  EXPECT_EQ(rs.iterations, ro.iterations);
  ASSERT_EQ(rs.history.size(), ro.history.size());
  for (std::size_t t = 0; t < rs.history.size(); ++t) {
    ASSERT_EQ(rs.history[t].primal_residual, ro.history[t].primal_residual)
        << "iteration " << t;
    ASSERT_EQ(rs.history[t].dual_residual, ro.history[t].dual_residual)
        << "iteration " << t;
  }
  ASSERT_EQ(rs.x.size(), ro.x.size());
  for (std::size_t i = 0; i < rs.x.size(); ++i) {
    ASSERT_EQ(rs.x[i], ro.x[i]) << "entry " << i;
  }
  // Empty-partition devices never launch the local-update kernel.
  const auto& last = over.device(devices - 1).ledger().by_kernel;
  EXPECT_EQ(last.count("local_update"), 0u);
}

TEST(MultiGpuTest, EveryDeviceDoesWork) {
  MultiGpuSolverFreeAdmm gpu(fixture().problem, make_options(4));
  gpu.solve();
  for (std::size_t d = 0; d < gpu.num_devices(); ++d) {
    EXPECT_GT(gpu.device(d).ledger().kernel_seconds, 0.0) << "device " << d;
  }
  // Only device 0 runs the global update.
  EXPECT_GT(gpu.device(0).ledger().by_kernel.count("global_update"), 0u);
  EXPECT_EQ(gpu.device(1).ledger().by_kernel.count("global_update"), 0u);
}

TEST(MultiGpuTest, LocalPhaseTimeRisesWithDeviceCount) {
  // The paper's Fig. 3 middle row: adding GPUs *increases* the local-update
  // phase time on small/medium instances because PCIe staging + MPI
  // dominate the shrinking kernels.
  double prev = 0.0;
  for (std::size_t devices : {1u, 2u, 4u, 8u}) {
    MultiGpuSolverFreeAdmm gpu(fixture().problem, make_options(devices, 40));
    gpu.solve();
    const double local = gpu.iteration_averages().local_update;
    if (devices > 1u) {
      EXPECT_GT(local, prev) << devices << " devices";
    }
    prev = local;
  }
}

TEST(MultiGpuTest, KernelSpanAloneShrinksWithDevices) {
  // Without the communication terms, splitting components across devices
  // cannot slow the kernels themselves: compare per-device kernel ledgers.
  const auto net =
      dopf::feeders::synthetic_feeder(dopf::feeders::ieee8500_mini_spec());
  const auto problem = dopf::opf::decompose(net);
  auto kernel_span = [&](std::size_t devices) {
    auto mo = make_options(devices, 10);
    // A tiny device (2 SMs) keeps the kernels work-dominated, so splitting
    // components across devices must shrink the per-device span.
    mo.device_spec.sm_count = 2;
    MultiGpuSolverFreeAdmm gpu(problem, mo);
    gpu.solve();
    double worst = 0.0;
    for (std::size_t d = 0; d < gpu.num_devices(); ++d) {
      const auto& by = gpu.device(d).ledger().by_kernel;
      const auto it = by.find("local_update");
      if (it == by.end()) continue;
      // Subtract the fixed per-launch overhead (10 iterations x 1 launch),
      // which is device-count independent; what must shrink is the work.
      worst = std::max(
          worst, it->second - 10 * gpu.device(d).spec().kernel_launch_us *
                                  1e-6);
    }
    return worst;
  };
  EXPECT_LT(kernel_span(4), kernel_span(1));
}

TEST(MultiGpuTest, IterationAveragesDivideBySolveIterations) {
  MultiGpuSolverFreeAdmm gpu(fixture().problem, make_options(2, 20));
  const auto res = gpu.solve();
  EXPECT_EQ(res.iterations, 20);
  const auto avg = gpu.iteration_averages();
  EXPECT_GT(avg.total(), 0.0);
  EXPECT_NEAR(avg.total() * 20.0,
              res.timing.global_update + res.timing.local_update +
                  res.timing.dual_update,
              1e-12);
}

}  // namespace
}  // namespace dopf::simt
