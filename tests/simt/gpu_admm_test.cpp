#include "simt/gpu_admm.hpp"

#include <gtest/gtest.h>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"

namespace dopf::simt {
namespace {

using dopf::core::AdmmOptions;
using dopf::core::AdmmResult;
using dopf::core::SolverFreeAdmm;
using dopf::opf::DistributedProblem;

struct Fixture {
  dopf::network::Network net = dopf::feeders::ieee13();
  DistributedProblem problem = dopf::opf::decompose(net);
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(DeviceProblemTest, ImageShapesMatchProblem) {
  const auto& p = fixture().problem;
  const auto solvers = dopf::core::LocalSolvers::precompute(p);
  const DeviceProblem img = DeviceProblem::build(p, solvers);
  EXPECT_EQ(img.num_components(), p.num_components());
  EXPECT_EQ(img.num_global(), p.num_vars);
  EXPECT_EQ(img.total_local(), p.total_local_vars());
  EXPECT_GT(img.bytes(), 0u);
  // Gather lists cover every z position exactly once.
  std::vector<int> seen(img.total_local(), 0);
  for (std::int64_t pos : img.gather_pos) ++seen[pos];
  for (int s : seen) EXPECT_EQ(s, 1);
  // Per-variable gather degree equals the copy count.
  for (std::size_t i = 0; i < img.num_global(); ++i) {
    EXPECT_EQ(img.gather_ptr[i + 1] - img.gather_ptr[i],
              p.copy_count[i]);
  }
}

TEST(GpuAdmmTest, TrajectoriesBitIdenticalToCpu) {
  // The paper's Fig. 2 claim: CPU and GPU runs have the same convergence
  // behaviour. Our SIMT simulation preserves summation order, so iterates
  // are bit-identical, not just close.
  AdmmOptions opt;
  opt.max_iterations = 200;
  opt.check_every = 1000;  // no early exit
  SolverFreeAdmm cpu(fixture().problem, opt);
  GpuAdmmOptions gopt;
  gopt.admm = opt;
  GpuSolverFreeAdmm gpu(fixture().problem, gopt);
  const AdmmResult rc = cpu.solve();
  const AdmmResult rg = gpu.solve();
  ASSERT_EQ(rc.x.size(), rg.x.size());
  for (std::size_t i = 0; i < rc.x.size(); ++i) {
    EXPECT_EQ(rc.x[i], rg.x[i]) << "global entry " << i;
  }
}

TEST(GpuAdmmTest, ResidualTrajectoriesMatchCpu) {
  AdmmOptions opt;
  opt.eps_rel = 1e-3;
  opt.max_iterations = 5000;
  SolverFreeAdmm cpu(fixture().problem, opt);
  GpuAdmmOptions gopt;
  gopt.admm = opt;
  GpuSolverFreeAdmm gpu(fixture().problem, gopt);
  const AdmmResult rc = cpu.solve();
  const AdmmResult rg = gpu.solve();
  EXPECT_EQ(rc.iterations, rg.iterations);
  ASSERT_EQ(rc.history.size(), rg.history.size());
  for (std::size_t k = 0; k < rc.history.size(); ++k) {
    EXPECT_EQ(rc.history[k].primal_residual, rg.history[k].primal_residual);
    EXPECT_EQ(rc.history[k].dual_residual, rg.history[k].dual_residual);
  }
}

TEST(GpuAdmmTest, ThreadCountDoesNotChangeResults) {
  AdmmOptions opt;
  opt.max_iterations = 100;
  opt.check_every = 1000;
  std::vector<double> reference;
  for (int threads : {1, 4, 32, 64}) {
    GpuAdmmOptions gopt;
    gopt.admm = opt;
    gopt.threads_per_block = threads;
    GpuSolverFreeAdmm gpu(fixture().problem, gopt);
    const AdmmResult r = gpu.solve();
    if (reference.empty()) {
      reference = r.x;
    } else {
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i], r.x[i]) << "threads = " << threads;
      }
    }
  }
}

TEST(GpuAdmmTest, MoreThreadsReduceSimulatedLocalTime) {
  // Fig. 3 bottom row: the thread sweep accelerates the local update.
  AdmmOptions opt;
  opt.max_iterations = 50;
  opt.check_every = 1000;
  double prev = -1.0;
  for (int threads : {1, 8, 64}) {
    GpuAdmmOptions gopt;
    gopt.admm = opt;
    gopt.threads_per_block = threads;
    GpuSolverFreeAdmm gpu(fixture().problem, gopt);
    gpu.solve();
    const double t = gpu.kernel_averages().local_update;
    if (prev > 0.0) EXPECT_LT(t, prev) << "threads = " << threads;
    prev = t;
  }
}

TEST(GpuAdmmTest, LedgerAccumulatesAllKernels) {
  AdmmOptions opt;
  opt.max_iterations = 10;
  GpuAdmmOptions gopt;
  gopt.admm = opt;
  GpuSolverFreeAdmm gpu(fixture().problem, gopt);
  gpu.solve();
  const auto& by = gpu.device().ledger().by_kernel;
  EXPECT_GT(by.at("global_update"), 0.0);
  EXPECT_GT(by.at("local_update"), 0.0);
  EXPECT_GT(by.at("dual_update"), 0.0);
  EXPECT_GT(gpu.device().ledger().transfer_seconds, 0.0);  // upload
}

TEST(GpuAdmmTest, KernelAveragesDivideByIterations) {
  AdmmOptions opt;
  opt.max_iterations = 10;
  opt.check_every = 1000;
  GpuAdmmOptions gopt;
  gopt.admm = opt;
  GpuSolverFreeAdmm gpu(fixture().problem, gopt);
  gpu.solve();
  const auto avg = gpu.kernel_averages();
  const auto& by = gpu.device().ledger().by_kernel;
  EXPECT_NEAR(avg.local_update, by.at("local_update") / 10.0, 1e-15);
  EXPECT_GT(avg.total(), 0.0);
}

TEST(LocalKernelCostTest, SubsetCostsAreMonotone) {
  const auto& p = fixture().problem;
  const auto solvers = dopf::core::LocalSolvers::precompute(p);
  const DeviceProblem img = DeviceProblem::build(p, solvers);
  const Device dev;
  std::vector<std::size_t> all(p.num_components());
  for (std::size_t s = 0; s < all.size(); ++s) all[s] = s;
  const std::vector<std::size_t> half(all.begin(),
                                      all.begin() + all.size() / 2);
  const double t_all = local_update_kernel_seconds(dev, img, all, 16);
  const double t_half = local_update_kernel_seconds(dev, img, half, 16);
  EXPECT_GE(t_all, t_half);
  // More threads never slow the kernel down.
  EXPECT_LE(local_update_kernel_seconds(dev, img, all, 64),
            local_update_kernel_seconds(dev, img, all, 1));
}

}  // namespace
}  // namespace dopf::simt
