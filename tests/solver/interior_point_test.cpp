#include "solver/interior_point.hpp"

#include <gtest/gtest.h>

#include <random>

#include "feeders/ieee13.hpp"
#include "linalg/vector_ops.hpp"
#include "opf/model.hpp"
#include "solver/reference.hpp"

namespace dopf::solver {
namespace {

using dopf::linalg::kInfinity;
using dopf::sparse::CsrMatrix;
using dopf::sparse::Triplet;

LpProblem make_lp(std::size_t m, std::size_t n,
                  const std::vector<Triplet>& trips,
                  std::vector<double> b, std::vector<double> c,
                  std::vector<double> lb, std::vector<double> ub) {
  LpProblem p;
  p.a = CsrMatrix::from_triplets(m, n, trips);
  p.b = std::move(b);
  p.c = std::move(c);
  p.lb = std::move(lb);
  p.ub = std::move(ub);
  return p;
}

TEST(InteriorPointTest, SolvesTrivialBoxLp) {
  // min x1 + x2 s.t. x1 + x2 = 1, 0 <= x <= 1: any feasible point gives
  // objective 1; optimal value must be 1.
  const LpProblem p = make_lp(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}}, {1.0},
                              {1.0, 1.0}, {0.0, 0.0}, {1.0, 1.0});
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(InteriorPointTest, BindsTheCheapVariable) {
  // min x1 + 3 x2 s.t. x1 + x2 = 1, 0 <= x1 <= 0.4: x1 = 0.4, x2 = 0.6.
  const LpProblem p = make_lp(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}}, {1.0},
                              {1.0, 3.0}, {0.0, 0.0}, {0.4, kInfinity});
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 0.4, 1e-6);
  EXPECT_NEAR(s.x[1], 0.6, 1e-6);
  EXPECT_NEAR(s.objective, 0.4 + 1.8, 1e-6);
}

TEST(InteriorPointTest, HandlesFreeVariables) {
  // min x2 s.t. x1 - x2 = 0, x2 >= 1; x1 free. Optimum x = (1, 1).
  const LpProblem p = make_lp(1, 2, {{0, 0, 1.0}, {0, 1, -1.0}}, {0.0},
                              {0.0, 1.0}, {-kInfinity, 1.0},
                              {kInfinity, kInfinity});
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 1.0, 1e-5);
  EXPECT_NEAR(s.x[1], 1.0, 1e-5);
}

TEST(InteriorPointTest, NegativeCostPushesToUpperBound) {
  // min -x s.t. (no equality rows beyond a dummy), 0 <= x <= 3.
  const LpProblem p = make_lp(1, 2, {{0, 1, 1.0}}, {0.5}, {-1.0, 0.0},
                              {0.0, 0.0}, {3.0, 1.0});
  const LpSolution s = solve_lp(p);
  EXPECT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-6);
  EXPECT_NEAR(s.x[1], 0.5, 1e-8);
}

TEST(InteriorPointTest, ZeroWidthBoxRejected) {
  LpProblem p = make_lp(1, 1, {{0, 0, 1.0}}, {1.0}, {1.0}, {1.0}, {1.0});
  EXPECT_THROW(solve_lp(p), std::invalid_argument);
}

TEST(InteriorPointTest, DimensionMismatchThrows) {
  LpProblem p = make_lp(1, 2, {{0, 0, 1.0}}, {1.0}, {1.0, 1.0}, {0.0, 0.0},
                        {1.0, 1.0});
  p.c.resize(1);
  EXPECT_THROW(solve_lp(p), std::invalid_argument);
}

class RandomLpSweep : public ::testing::TestWithParam<int> {};

/// Random feasible boxed LPs; verify KKT conditions of the reported optimum
/// rather than comparing to another solver.
TEST_P(RandomLpSweep, KktConditionsHold) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 8 + GetParam() % 5;
  const std::size_t m = 3 + GetParam() % 3;
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (dist(rng) > 0.0) {
        trips.push_back({static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(j), dist(rng)});
      }
    }
    // Guarantee no empty rows.
    trips.push_back({static_cast<std::int64_t>(i),
                     static_cast<std::int64_t>(i), 1.0 + std::abs(dist(rng))});
  }
  CsrMatrix a = CsrMatrix::from_triplets(m, n, trips);
  std::vector<double> x_feas(n), lb(n), ub(n), c(n), b(m, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    x_feas[j] = dist(rng);
    lb[j] = x_feas[j] - 0.5 - std::abs(dist(rng));
    ub[j] = x_feas[j] + 0.5 + std::abs(dist(rng));
    c[j] = dist(rng);
  }
  a.multiply(x_feas, b);
  LpProblem p;
  p.a = std::move(a);
  p.b = std::move(b);
  p.c = std::move(c);
  p.lb = std::move(lb);
  p.ub = std::move(ub);

  LpOptions tight;
  tight.tolerance = 1e-9;
  tight.gap_tolerance = 1e-8;
  tight.max_iterations = 400;
  const LpSolution s = solve_lp(p, tight);
  ASSERT_EQ(s.status, LpStatus::kOptimal) << "seed " << GetParam();

  // Primal feasibility.
  std::vector<double> ax(p.b.size(), 0.0);
  p.a.multiply(s.x, ax);
  for (std::size_t i = 0; i < p.b.size(); ++i) {
    EXPECT_NEAR(ax[i], p.b[i], 1e-5);
  }
  for (std::size_t j = 0; j < s.x.size(); ++j) {
    EXPECT_GE(s.x[j], p.lb[j] - 1e-6);
    EXPECT_LE(s.x[j], p.ub[j] + 1e-6);
  }
  // Dual feasibility / stationarity: z = c - A'y decomposes into
  // nonnegative multipliers on the active sides.
  std::vector<double> z(s.x.size(), 0.0);
  p.a.multiply_transpose(s.y, z);
  for (std::size_t j = 0; j < s.x.size(); ++j) {
    const double rc = p.c[j] - z[j];
    const bool at_lb = s.x[j] <= p.lb[j] + 1e-5;
    const bool at_ub = s.x[j] >= p.ub[j] - 1e-5;
    if (!at_lb && !at_ub) {
      EXPECT_NEAR(rc, 0.0, 1e-4) << "interior variable " << j;
    } else if (at_lb) {
      EXPECT_GE(rc, -1e-4) << "variable at lower bound " << j;
    } else {
      EXPECT_LE(rc, 1e-4) << "variable at upper bound " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep, ::testing::Range(0, 15));

TEST(ReferenceTest, Ieee13ReferenceIsOptimalAndFeasible) {
  const auto net = dopf::feeders::ieee13();
  const auto model = dopf::opf::build_model(net);
  const LpSolution s = reference_solve(model);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_LT(model.equation_residual(s.x), 1e-5);
  EXPECT_LT(model.bound_violation(s.x), 1e-6);
  EXPECT_GT(s.objective, 0.0);  // serving load costs generation
}

TEST(ReferenceTest, WidensPinnedVoltageBoxes) {
  const auto net = dopf::feeders::ieee13();
  const auto model = dopf::opf::build_model(net);
  const LpProblem p = reference_problem(model);
  for (std::size_t j = 0; j < p.c.size(); ++j) {
    EXPECT_GT(p.ub[j] - p.lb[j], 0.0);
  }
}

TEST(ReferenceTest, FiniteBigMClipsFreeVariables) {
  const auto net = dopf::feeders::ieee13();
  const auto model = dopf::opf::build_model(net);
  ReferenceOptions opts;
  opts.big_m = 42.0;
  const LpProblem p = reference_problem(model, opts);
  double max_abs_bound = 0.0;
  for (std::size_t j = 0; j < p.c.size(); ++j) {
    max_abs_bound = std::max(max_abs_bound, std::abs(p.lb[j]));
    max_abs_bound = std::max(max_abs_bound, std::abs(p.ub[j]));
  }
  EXPECT_LE(max_abs_bound, 42.0 + 1e-9);
}

}  // namespace
}  // namespace dopf::solver
