#include "solver/box_qp.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/rref.hpp"
#include "linalg/vector_ops.hpp"

namespace dopf::solver {
namespace {

using dopf::linalg::kInfinity;
using dopf::linalg::Matrix;

TEST(BoxQpTest, UnconstrainedBoxReducesToAffineProjection) {
  Matrix a{{1.0, 1.0}};
  BoxQp qp(a, {2.0}, {-kInfinity, -kInfinity}, {kInfinity, kInfinity});
  const auto res = qp.project(std::vector<double>{0.0, 0.0});
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 1.0, 1e-9);
  EXPECT_NEAR(res.x[1], 1.0, 1e-9);
}

TEST(BoxQpTest, ActiveBoundShiftsSolution) {
  // Project (0,0) onto {x + y = 2, x <= 0.5}: solution (0.5, 1.5).
  Matrix a{{1.0, 1.0}};
  BoxQp qp(a, {2.0}, {-kInfinity, -kInfinity}, {0.5, kInfinity});
  const auto res = qp.project(std::vector<double>{0.0, 0.0});
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 0.5, 1e-8);
  EXPECT_NEAR(res.x[1], 1.5, 1e-8);
}

TEST(BoxQpTest, InteriorPointIsFixed) {
  Matrix a{{1.0, -1.0}};
  BoxQp qp(a, {0.0}, {-1.0, -1.0}, {1.0, 1.0});
  const auto res = qp.project(std::vector<double>{0.3, 0.3});
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 0.3, 1e-10);
  EXPECT_NEAR(res.x[1], 0.3, 1e-10);
}

TEST(BoxQpTest, FullyClampedBox) {
  // Degenerate box pinning both variables; A x = b must still hold.
  Matrix a{{1.0, 1.0}};
  BoxQp qp(a, {2.0}, {1.0, 1.0}, {1.0, 1.0});
  const auto res = qp.project(std::vector<double>{5.0, -7.0});
  EXPECT_NEAR(res.x[0], 1.0, 1e-8);
  EXPECT_NEAR(res.x[1], 1.0, 1e-8);
}

TEST(BoxQpTest, WarmStartSpeedsSecondSolve) {
  Matrix a{{1.0, 2.0, -1.0}, {0.0, 1.0, 1.0}};
  BoxQp qp(a, {1.0, 0.5}, {-1.0, -1.0, -1.0}, {1.0, 1.0, 1.0});
  std::vector<double> mu(2, 0.0);
  const std::vector<double> y = {0.2, 0.8, -0.4};
  const auto first = qp.project(y, {}, &mu);
  ASSERT_TRUE(first.converged);
  const auto second = qp.project(y, {}, &mu);
  ASSERT_TRUE(second.converged);
  EXPECT_LE(second.newton_iterations, first.newton_iterations);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(second.x[j], first.x[j], 1e-8);
  }
}

/// KKT check: x is optimal iff x = clip(y - A' mu, lb, ub) and A x = b for
/// some mu — which is exactly the structure the solver returns. Verify
/// optimality indirectly: the returned point cannot be improved by feasible
/// perturbations toward y.
void expect_projection_optimal(const Matrix& a, std::span<const double> b,
                               std::span<const double> lb,
                               std::span<const double> ub,
                               std::span<const double> y,
                               std::span<const double> x, double tol) {
  // Feasibility.
  const std::vector<double> ax = multiply(a, x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(ax[i], b[i], tol);
  for (std::size_t j = 0; j < x.size(); ++j) {
    EXPECT_GE(x[j], lb[j] - tol);
    EXPECT_LE(x[j], ub[j] + tol);
  }
  // First-order optimality via random feasible directions: for directions d
  // with A d = 0 respecting active bounds, (x - y)' d >= 0.
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const dopf::linalg::AffineProjector null_proj(
      a, std::vector<double>(b.size(), 0.0));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> d(x.size());
    for (double& v : d) v = dist(rng);
    d = null_proj.project(d);  // A d = 0
    // Zero out components that would leave the box.
    for (std::size_t j = 0; j < x.size(); ++j) {
      if ((x[j] <= lb[j] + tol && d[j] < 0.0) ||
          (x[j] >= ub[j] - tol && d[j] > 0.0)) {
        d.assign(x.size(), 0.0);  // direction infeasible; skip trial
        break;
      }
    }
    double directional = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      directional += (x[j] - y[j]) * d[j];
    }
    // Moving along a feasible direction cannot reduce ||x - y||^2 at first
    // order more than tolerance allows.
    const double norm_d = dopf::linalg::norm2(d);
    if (norm_d > 1e-9) {
      // Compare against a small actual step.
      const double h = 1e-4;
      double f0 = 0.0, f1 = 0.0;
      for (std::size_t j = 0; j < x.size(); ++j) {
        f0 += (x[j] - y[j]) * (x[j] - y[j]);
        const double xj = x[j] + h * d[j];
        f1 += (xj - y[j]) * (xj - y[j]);
      }
      EXPECT_GE(f1, f0 - 1e-6) << "improving feasible direction found";
    }
  }
}

class BoxQpRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(BoxQpRandomSweep, RandomProblemsAreSolvedToOptimality) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const std::size_t n = 4 + GetParam() % 6;
  const std::size_t m = 1 + GetParam() % 3;
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
  }
  // Feasible interior point x_feas to build b and bounds around.
  std::vector<double> x_feas(n), b(m, 0.0), lb(n), ub(n);
  for (std::size_t j = 0; j < n; ++j) x_feas[j] = dist(rng);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_feas[j];
  }
  for (std::size_t j = 0; j < n; ++j) {
    lb[j] = x_feas[j] - 0.2 - 0.5 * std::abs(dist(rng));
    ub[j] = x_feas[j] + 0.2 + 0.5 * std::abs(dist(rng));
  }
  BoxQp qp(a, b, lb, ub);
  std::vector<double> y(n);
  for (double& v : y) v = 2.0 * dist(rng);
  const auto res = qp.project(y);
  EXPECT_TRUE(res.converged) << "residual " << res.residual;
  expect_projection_optimal(a, b, lb, ub, y, res.x, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxQpRandomSweep, ::testing::Range(0, 25));

TEST(BoxQpTest, DykstraFallbackAgreesWithNewton) {
  Matrix a{{1.0, 1.0, 1.0}};
  std::vector<double> b = {1.5};
  std::vector<double> lb = {0.0, 0.0, 0.0};
  std::vector<double> ub = {1.0, 1.0, 1.0};
  BoxQp qp(a, b, lb, ub);
  const std::vector<double> y = {2.0, 0.4, -1.0};
  BoxQpOptions newton_only;
  newton_only.max_dykstra = 0;
  const auto rn = qp.project(y, newton_only);
  BoxQpOptions dykstra_only;
  dykstra_only.max_newton = 0;
  const auto rd = qp.project(y, dykstra_only);
  ASSERT_TRUE(rn.converged);
  ASSERT_TRUE(rd.converged);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(rn.x[j], rd.x[j], 1e-6);
}

TEST(BoxQpTest, DimensionMismatchThrows) {
  Matrix a(1, 2);
  EXPECT_THROW(BoxQp(a, {1.0}, {0.0}, {1.0, 1.0}), std::invalid_argument);
  BoxQp ok(Matrix{{1.0, 1.0}}, {1.0}, {0.0, 0.0}, {1.0, 1.0});
  EXPECT_THROW(ok.project(std::vector<double>{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace dopf::solver
