// The adversarial robustness gate (tier2): every seeded mutant feeder must
// be either solved or rejected with a typed diagnostic — never a NaN, a
// crash, or an untyped exception escaping the pipeline.
#include "verify/adversarial.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dopf::verify {
namespace {

TEST(AdversarialTest, FullCorpusSolvedOrDiagnosed) {
  AdversarialOptions options;  // 200 cases, fixed base seed
  const AdversarialReport report = run_adversarial(options);
  ASSERT_EQ(report.cases.size(), options.num_cases);
  EXPECT_EQ(report.num_failed(), 0u) << report.summary();
  EXPECT_TRUE(report.ok());
  for (const AdversarialCase& c : report.cases) {
    EXPECT_TRUE(c.acceptable())
        << "seed " << c.seed << ": " << c.detail;
  }
}

TEST(AdversarialTest, CorpusCoversEveryMutationAndPolicy) {
  AdversarialOptions options;
  options.num_cases = 33;  // lcm(11 mutations, 3 policies)
  const AdversarialReport report = run_adversarial(options);
  std::set<AdversarialMutation> mutations;
  std::set<dopf::robust::PreflightPolicy> policies;
  std::set<std::pair<int, int>> pairs;
  for (const AdversarialCase& c : report.cases) {
    mutations.insert(c.mutation);
    policies.insert(c.policy);
    pairs.insert({static_cast<int>(c.mutation), static_cast<int>(c.policy)});
  }
  EXPECT_EQ(mutations.size(),
            static_cast<std::size_t>(AdversarialMutation::kCount));
  EXPECT_EQ(policies.size(), 3u);
  EXPECT_EQ(pairs.size(), 33u);  // every (mutation, policy) pair exactly once
}

TEST(AdversarialTest, RunsAreDeterministic) {
  AdversarialOptions options;
  options.num_cases = 33;
  const AdversarialReport first = run_adversarial(options);
  const AdversarialReport second = run_adversarial(options);
  ASSERT_EQ(first.cases.size(), second.cases.size());
  for (std::size_t i = 0; i < first.cases.size(); ++i) {
    EXPECT_EQ(first.cases[i].outcome, second.cases[i].outcome) << i;
    EXPECT_EQ(first.cases[i].detail, second.cases[i].detail) << i;
  }
}

TEST(AdversarialTest, RejectionsCarryDiagnostics) {
  AdversarialOptions options;
  options.num_cases = 33;
  const AdversarialReport report = run_adversarial(options);
  std::size_t rejected = 0;
  for (const AdversarialCase& c : report.cases) {
    if (c.outcome == AdversarialOutcome::kRejected) {
      ++rejected;
      EXPECT_FALSE(c.detail.empty()) << "seed " << c.seed;
    }
  }
  // The corpus includes hard structural corruption (NaN loads, infinite
  // impedance); some rejections must occur.
  EXPECT_GT(rejected, 0u);
}

TEST(AdversarialTest, SummaryReportsAllOutcomeBuckets) {
  AdversarialOptions options;
  options.num_cases = 11;
  const std::string summary = run_adversarial(options).summary();
  EXPECT_NE(summary.find("solved"), std::string::npos);
  EXPECT_NE(summary.find("rejected"), std::string::npos);
  EXPECT_NE(summary.find("FAILED"), std::string::npos);
}

}  // namespace
}  // namespace dopf::verify
