// Golden-trace format: hex-float serialization must round-trip every bit,
// the comparator must pinpoint the first divergence, and malformed files
// must be rejected with a pointed error.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "verify/trace.hpp"

namespace dopf::verify {
namespace {

Trace sample_trace() {
  // A real solve, so the trace carries genuinely irrational doubles.
  const auto net = dopf::feeders::ieee13();
  const auto problem = dopf::opf::decompose(net);
  dopf::core::AdmmOptions opt;
  opt.max_iterations = 25;
  opt.eps_rel = 0.0;
  opt.check_every = 1;
  dopf::core::SolverFreeAdmm admm(problem, opt);
  return Trace::from_result(admm.solve(), opt, "ieee13", "serial");
}

TEST(TraceTest, RoundTripPreservesEveryBit) {
  const Trace original = sample_trace();
  ASSERT_FALSE(original.history.empty());
  ASSERT_FALSE(original.x.empty());

  std::stringstream buffer;
  write_trace(original, buffer);
  const Trace reread = read_trace(buffer);

  const TraceDiff diff = compare_traces(original, reread, 0.0);
  EXPECT_TRUE(diff.identical) << diff.message;
  EXPECT_EQ(trace_digest(original), trace_digest(reread));
  EXPECT_EQ(reread.backend, "serial");
  EXPECT_EQ(reread.network, "ieee13");
}

TEST(TraceTest, SerializationIsDeterministic) {
  const Trace trace = sample_trace();
  std::stringstream a, b;
  write_trace(trace, a);
  write_trace(trace, b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(TraceTest, HexFloatSpecialValuesRoundTrip) {
  Trace t;
  t.network = "special";
  t.algorithm = "solver-free";
  t.backend = "serial";
  t.status = "converged";
  t.x = {0.0, -0.0, std::numeric_limits<double>::denorm_min(),
         -std::numeric_limits<double>::max(), 0.1, 1.0 / 3.0};
  std::stringstream buffer;
  write_trace(t, buffer);
  const Trace r = read_trace(buffer);
  ASSERT_EQ(r.x.size(), t.x.size());
  for (std::size_t i = 0; i < t.x.size(); ++i) {
    EXPECT_EQ(std::signbit(r.x[i]), std::signbit(t.x[i])) << i;
    EXPECT_EQ(r.x[i], t.x[i]) << i;
  }
  EXPECT_TRUE(compare_traces(t, r, 0.0).identical);
}

TEST(TraceTest, ComparatorPinpointsHistoryDivergence) {
  const Trace golden = sample_trace();
  Trace mutated = golden;
  // One ULP on one residual sample must be caught and located.
  mutated.history[7].dual_residual =
      std::nextafter(mutated.history[7].dual_residual, 1e300);

  const TraceDiff diff = compare_traces(golden, mutated, 0.0);
  ASSERT_FALSE(diff.identical);
  EXPECT_NE(diff.message.find("iteration " +
                              std::to_string(golden.history[7].iteration)),
            std::string::npos)
      << diff.message;
  EXPECT_NE(diff.message.find("dual_residual"), std::string::npos)
      << diff.message;

  // The same ULP nudge is far inside any sane tolerance.
  EXPECT_TRUE(compare_traces(golden, mutated, 1e-9).identical);
}

TEST(TraceTest, ComparatorPinpointsIterateDivergence) {
  const Trace golden = sample_trace();
  Trace mutated = golden;
  mutated.x[3] += 1e-12;
  const TraceDiff diff = compare_traces(golden, mutated, 0.0);
  ASSERT_FALSE(diff.identical);
  EXPECT_NE(diff.message.find("x[3]"), std::string::npos) << diff.message;
  EXPECT_NE(trace_digest(golden), trace_digest(mutated));
}

TEST(TraceTest, ComparatorRejectsProfileMismatch) {
  const Trace golden = sample_trace();
  Trace other = golden;
  other.check_every = golden.check_every + 1;
  const TraceDiff diff = compare_traces(golden, other, 0.0);
  ASSERT_FALSE(diff.identical);
  EXPECT_NE(diff.message.find("profile"), std::string::npos) << diff.message;
}

TEST(TraceTest, BackendFieldIsExcludedFromComparison) {
  const Trace golden = sample_trace();
  Trace other = golden;
  other.backend = "threaded";
  EXPECT_TRUE(compare_traces(golden, other, 0.0).identical);
}

TEST(TraceTest, ToleranceComparisonAcceptsNearbyTraces) {
  const Trace golden = sample_trace();
  Trace near = golden;
  for (double& v : near.x) v += 1e-9;
  EXPECT_FALSE(compare_traces(golden, near, 0.0).identical);
  EXPECT_TRUE(compare_traces(golden, near, 1e-6).identical);
}

TEST(TraceTest, TruncatedTraceRejected) {
  const Trace trace = sample_trace();
  std::stringstream buffer;
  write_trace(trace, buffer);
  const std::string text = buffer.str();
  for (double frac : {0.2, 0.6, 0.95}) {
    std::stringstream cut(
        text.substr(0, static_cast<std::size_t>(text.size() * frac)));
    EXPECT_THROW(read_trace(cut), TraceError) << "fraction " << frac;
  }
}

TEST(TraceTest, GarbageRejected) {
  std::stringstream not_a_trace("dopf-trace v2\n");
  EXPECT_THROW(read_trace(not_a_trace), TraceError);
  std::stringstream empty("");
  EXPECT_THROW(read_trace(empty), TraceError);
  std::stringstream bad_number(
      "dopf-trace v1\nnetwork n\nalgorithm a\nbackend b\nrho banana\n");
  EXPECT_THROW(read_trace(bad_number), TraceError);
}

TEST(TraceTest, MissingGoldenFileRaises) {
  EXPECT_THROW(load_trace("/nonexistent/golden.trace"), TraceError);
}

}  // namespace
}  // namespace dopf::verify
