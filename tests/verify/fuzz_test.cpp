// tier2: property-based differential fuzzing. Seeded random radial feeders
// run through all three execution backends and the interior-point reference;
// every invariant (local feasibility, box satisfaction, byte-identical
// cross-backend traces, KKT residual vs. the reference) must hold on every
// case. Plus the seeded-determinism regression: same seed, same everything.

#include <gtest/gtest.h>

#include <sstream>

#include "feeders/feeder_io.hpp"
#include "feeders/synthetic.hpp"
#include "verify/fuzzer.hpp"
#include "verify/trace.hpp"

namespace dopf::verify {
namespace {

TEST(FuzzTest, TwentyFiveSeededFeedersSatisfyAllInvariants) {
  FuzzOptions options;
  options.num_cases = 25;
  options.base_seed = 8207001;
  const FuzzReport report = run_fuzz(options);
  ASSERT_EQ(report.cases.size(), 25u);
  EXPECT_TRUE(report.ok()) << report.summary();
  for (const FuzzCase& c : report.cases) {
    EXPECT_TRUE(c.converged) << "seed " << c.seed;
    EXPECT_GT(c.components, 2u) << "seed " << c.seed;
  }
}

TEST(FuzzTest, SameSeedProducesIdenticalFeeders) {
  // The generated feeder itself must be a pure function of the seed: equal
  // serialized text, not merely equal statistics.
  for (std::uint64_t seed : {1ull, 99ull, 8207013ull}) {
    const auto spec_a = random_spec(seed);
    const auto spec_b = random_spec(seed);
    std::stringstream a, b;
    dopf::feeders::write_feeder(dopf::feeders::synthetic_feeder(spec_a), a);
    dopf::feeders::write_feeder(dopf::feeders::synthetic_feeder(spec_b), b);
    ASSERT_FALSE(a.str().empty());
    EXPECT_EQ(a.str(), b.str()) << "seed " << seed;
  }
}

TEST(FuzzTest, DifferentSeedsProduceDifferentFeeders) {
  const auto a = random_spec(1);
  const auto b = random_spec(2);
  std::stringstream text_a, text_b;
  dopf::feeders::write_feeder(dopf::feeders::synthetic_feeder(a), text_a);
  dopf::feeders::write_feeder(dopf::feeders::synthetic_feeder(b), text_b);
  EXPECT_NE(text_a.str(), text_b.str());
}

TEST(FuzzTest, SameSeedProducesIdenticalResidualHistories) {
  // Two full fuzzer runs with the same seed: identical trace digests (the
  // digest hashes the bit patterns of every residual sample and the final
  // iterate) and identical outcomes, case by case.
  FuzzOptions options;
  options.num_cases = 4;
  options.base_seed = 555000;
  const FuzzReport first = run_fuzz(options);
  const FuzzReport second = run_fuzz(options);
  ASSERT_EQ(first.cases.size(), second.cases.size());
  for (std::size_t i = 0; i < first.cases.size(); ++i) {
    const FuzzCase& a = first.cases[i];
    const FuzzCase& b = second.cases[i];
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.digest, b.digest) << "seed " << a.seed;
    EXPECT_EQ(a.iterations, b.iterations) << "seed " << a.seed;
    EXPECT_EQ(a.objective, b.objective) << "seed " << a.seed;
    EXPECT_EQ(a.feeder_summary, b.feeder_summary) << "seed " << a.seed;
    EXPECT_EQ(a.failures, b.failures) << "seed " << a.seed;
  }
}

TEST(FuzzTest, DisablingReferenceSkipsKktChecks) {
  FuzzOptions options;
  options.num_cases = 1;
  options.base_seed = 31337;
  options.run_reference = false;
  const FuzzReport report = run_fuzz(options);
  ASSERT_EQ(report.cases.size(), 1u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace dopf::verify
