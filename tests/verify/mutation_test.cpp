// Mutation smoke tests: the verification harness must DETECT a deliberately
// perturbed kernel — otherwise a green golden comparison proves nothing.

#include <gtest/gtest.h>

#include <memory>

#include "core/admm.hpp"
#include "core/backend.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "runtime/threaded_backend.hpp"
#include "verify/invariants.hpp"
#include "verify/mutation.hpp"
#include "verify/trace.hpp"

namespace dopf::verify {
namespace {

using dopf::core::AdmmOptions;
using dopf::core::SolverFreeAdmm;

AdmmOptions fixed_trajectory(int iterations) {
  AdmmOptions opt;
  opt.max_iterations = iterations;
  opt.eps_rel = 0.0;
  opt.check_every = 1;
  return opt;
}

TEST(MutationTest, PerturbedKernelDivergesFromCleanTrace) {
  const auto net = dopf::feeders::ieee13();
  const auto problem = dopf::opf::decompose(net);
  const AdmmOptions opt = fixed_trajectory(30);

  SolverFreeAdmm clean(problem, opt);
  const Trace golden = Trace::from_result(clean.solve(), opt, "ieee13",
                                          "serial");

  SolverFreeAdmm mutated(problem, opt);
  MutationSpec spec;
  spec.local_update_call = 5;
  spec.delta = 1e-9;  // even a 1e-9 nudge must be caught bit-for-bit
  mutated.set_backend(
      make_mutant_backend(dopf::core::make_serial_backend(), spec));
  const Trace trace =
      Trace::from_result(mutated.solve(), opt, "ieee13", "serial");

  const TraceDiff diff = compare_traces(golden, trace, 0.0);
  ASSERT_FALSE(diff.identical)
      << "mutation was NOT detected - the harness has no teeth";
  // Pointed diagnostic: the first divergence is at (or right after) the
  // mutated iteration, never before it.
  EXPECT_NE(diff.message.find("iteration 5"), std::string::npos)
      << diff.message;
}

TEST(MutationTest, CleanRunsStayIdenticalAcrossWrappedBackends) {
  // Wrapping alone (strike scheduled far past the horizon) must not change
  // a single bit — the wrapper itself is pass-through.
  const auto net = dopf::feeders::ieee13();
  const auto problem = dopf::opf::decompose(net);
  const AdmmOptions opt = fixed_trajectory(20);

  SolverFreeAdmm clean(problem, opt);
  const Trace golden =
      Trace::from_result(clean.solve(), opt, "ieee13", "serial");

  MutationSpec never;
  never.local_update_call = 1000000;
  SolverFreeAdmm wrapped(problem, opt);
  wrapped.set_backend(
      make_mutant_backend(dopf::core::make_serial_backend(), never));
  const Trace trace =
      Trace::from_result(wrapped.solve(), opt, "ieee13", "serial");
  const TraceDiff diff = compare_traces(golden, trace, 0.0);
  EXPECT_TRUE(diff.identical) << diff.message;
}

TEST(MutationTest, MutantWrapsAnyBackendAndReportsItsName) {
  MutationSpec spec;
  const auto serial =
      make_mutant_backend(dopf::core::make_serial_backend(), spec);
  EXPECT_STREQ(serial->name(), "mutant(serial)");
  const auto threaded =
      make_mutant_backend(dopf::runtime::make_threaded_backend(2), spec);
  EXPECT_STREQ(threaded->name(), "mutant(threaded)");
}

TEST(MutationTest, FinalStateMutationCaughtByInvariantChecker) {
  // A perturbation on the LAST local update leaves no later iterations for
  // the residual history to diverge much — the invariant checker must catch
  // it through local feasibility instead.
  const auto net = dopf::feeders::ieee13();
  const auto problem = dopf::opf::decompose(net);
  const AdmmOptions opt = fixed_trajectory(30);

  SolverFreeAdmm mutated(problem, opt);
  MutationSpec spec;
  spec.local_update_call = 30;  // the final iteration
  spec.delta = 1e-3;
  mutated.set_backend(
      make_mutant_backend(dopf::core::make_serial_backend(), spec));
  (void)mutated.solve();

  const InvariantReport report =
      check_invariants(problem, mutated.x(), mutated.z());
  InvariantOptions options;
  EXPECT_GT(report.local_feasibility, options.local_feasibility_tol);
  EXPECT_FALSE(report.ok(options));
}

}  // namespace
}  // namespace dopf::verify
