// The invariant checker recomputes feasibility/consensus/KKT quantities
// directly from the component blocks and the centralized model — these tests
// pin down both directions: a healthy converged state passes, and each
// corrupted state is caught by the matching invariant.

#include <gtest/gtest.h>

#include <vector>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "opf/model.hpp"
#include "solver/reference.hpp"
#include "verify/invariants.hpp"

namespace dopf::verify {
namespace {

struct SolvedInstance {
  dopf::opf::OpfModel model;
  dopf::opf::DistributedProblem problem;
  std::vector<double> x;
  std::vector<double> z;
};

const SolvedInstance& solved_ieee13() {
  static const SolvedInstance* instance = [] {
    const auto net = dopf::feeders::ieee13();
    auto model = dopf::opf::build_model(net);
    auto problem = dopf::opf::decompose(net, model);
    dopf::core::AdmmOptions opt;
    opt.eps_rel = 1e-3;
    opt.check_every = 10;
    dopf::core::SolverFreeAdmm admm(problem, opt);
    const auto result = admm.solve();
    EXPECT_TRUE(result.converged);
    return new SolvedInstance{
        std::move(model), std::move(problem),
        std::vector<double>(admm.x().begin(), admm.x().end()),
        std::vector<double>(admm.z().begin(), admm.z().end())};
  }();
  return *instance;
}

TEST(InvariantsTest, ConvergedStatePassesAllChecks) {
  const SolvedInstance& s = solved_ieee13();
  InvariantReport report = check_invariants(s.problem, s.x, s.z);
  add_model_check(s.model, s.x, &report);

  const InvariantOptions options;
  EXPECT_TRUE(report.ok(options)) << [&] {
    std::string all;
    for (const auto& f : report.failures(options)) all += f + "\n";
    return all;
  }();
  // z comes out of exact projections: feasibility is roundoff-level.
  EXPECT_LT(report.local_feasibility, 1e-9);
  // the global update clips, so the box is satisfied exactly.
  EXPECT_LE(report.box_violation, 0.0 + 1e-15);
  EXPECT_GT(report.primal_residual, 0.0);
}

TEST(InvariantsTest, KktAndObjectiveAgainstReferencePass) {
  const SolvedInstance& s = solved_ieee13();
  const auto reference = dopf::solver::reference_solve(s.model);
  ASSERT_EQ(reference.status, dopf::solver::LpStatus::kOptimal);

  InvariantReport report = check_invariants(s.problem, s.x, s.z);
  add_reference_check(s.model, s.x, reference, &report);
  ASSERT_GE(report.kkt_stationarity, 0.0);
  ASSERT_GE(report.objective_gap, 0.0);
  EXPECT_TRUE(report.ok(InvariantOptions{})) << report.to_string();

  // The reference optimum itself must be (numerically) a KKT point — a much
  // tighter statement than the ADMM tolerance.
  InvariantReport at_optimum;
  add_reference_check(s.model, reference.x, reference, &at_optimum);
  EXPECT_LT(at_optimum.kkt_stationarity, 1e-4);
  EXPECT_LT(at_optimum.objective_gap, 1e-9);
}

TEST(InvariantsTest, CorruptedLocalIterateCaught) {
  const SolvedInstance& s = solved_ieee13();
  std::vector<double> corrupt_z = s.z;
  corrupt_z[corrupt_z.size() / 2] += 0.1;

  const InvariantReport report = check_invariants(s.problem, s.x, corrupt_z);
  const InvariantOptions options;
  EXPECT_GT(report.local_feasibility, options.local_feasibility_tol);
  EXPECT_FALSE(report.ok(options));
  EXPECT_FALSE(report.worst_component.empty());
  // The diagnostic names the offending invariant.
  bool mentions_feasibility = false;
  for (const auto& f : report.failures(options)) {
    if (f.find("local feasibility") != std::string::npos) {
      mentions_feasibility = true;
    }
  }
  EXPECT_TRUE(mentions_feasibility);
}

TEST(InvariantsTest, OutOfBoxGlobalIterateCaught) {
  const SolvedInstance& s = solved_ieee13();
  std::vector<double> corrupt_x = s.x;
  // Push one bounded variable far past its upper bound.
  for (std::size_t i = 0; i < corrupt_x.size(); ++i) {
    if (s.problem.ub[i] < 1e29) {
      corrupt_x[i] = s.problem.ub[i] + 1.0;
      break;
    }
  }
  const InvariantReport report = check_invariants(s.problem, corrupt_x, s.z);
  EXPECT_GT(report.box_violation, 0.9);
  EXPECT_FALSE(report.ok(InvariantOptions{}));
}

TEST(InvariantsTest, ConsensusGapCaught) {
  const SolvedInstance& s = solved_ieee13();
  std::vector<double> drifted_x = s.x;
  for (double& v : drifted_x) v += 0.2;
  const InvariantReport report = check_invariants(s.problem, drifted_x, s.z);
  const InvariantOptions options;
  EXPECT_GT(report.consensus_gap, options.consensus_tol);
  EXPECT_FALSE(report.ok(options));
}

TEST(InvariantsTest, StationarityCatchesNonOptimalPoint) {
  const SolvedInstance& s = solved_ieee13();
  const auto reference = dopf::solver::reference_solve(s.model);
  ASSERT_EQ(reference.status, dopf::solver::LpStatus::kOptimal);

  // A feasible-looking but non-optimal point: drag the generator dispatch
  // variables (those with cost) away from the optimum.
  std::vector<double> bad_x = reference.x;
  for (std::size_t i = 0; i < bad_x.size(); ++i) {
    if (s.model.c[i] != 0.0) bad_x[i] += 1.0;
  }
  InvariantReport report;
  add_reference_check(s.model, bad_x, reference, &report);
  EXPECT_GT(report.kkt_stationarity, InvariantOptions{}.kkt_tol);
  EXPECT_GT(report.objective_gap, InvariantOptions{}.objective_tol);
}

TEST(InvariantsTest, SizeMismatchesRejected) {
  const SolvedInstance& s = solved_ieee13();
  std::vector<double> short_x(s.x.begin(), s.x.end() - 1);
  EXPECT_THROW(check_invariants(s.problem, short_x, s.z),
               std::invalid_argument);
  std::vector<double> short_z(s.z.begin(), s.z.end() - 1);
  EXPECT_THROW(check_invariants(s.problem, s.x, short_z),
               std::invalid_argument);
}

TEST(InvariantsTest, ReportFormatsAllEvaluatedFields) {
  const SolvedInstance& s = solved_ieee13();
  InvariantReport report = check_invariants(s.problem, s.x, s.z);
  add_model_check(s.model, s.x, &report);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("local_feasibility"), std::string::npos);
  EXPECT_NE(text.find("consensus_gap"), std::string::npos);
  EXPECT_NE(text.find("model_residual"), std::string::npos);
  // Not evaluated -> not reported.
  EXPECT_EQ(text.find("kkt_stationarity"), std::string::npos);
}

}  // namespace
}  // namespace dopf::verify
