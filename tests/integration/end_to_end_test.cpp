/// End-to-end integration tests: feeder -> model -> decomposition -> both
/// ADMM variants -> reference optimum, on instances larger than unit-test
/// fixtures, plus topology-reconfiguration scenarios (the motivation for
/// component-wise decomposition in the paper's introduction).

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/benchmark_admm.hpp"
#include "core/admm.hpp"
#include "feeders/feeder_io.hpp"
#include "feeders/synthetic.hpp"
#include "opf/stats.hpp"
#include "runtime/instances.hpp"
#include "simt/gpu_admm.hpp"
#include "solver/reference.hpp"

namespace {

using dopf::core::AdmmOptions;
using dopf::core::AdmmResult;
using dopf::core::SolverFreeAdmm;
using dopf::runtime::Instance;
using dopf::runtime::make_instance;

TEST(EndToEndTest, Ieee123SolverFreeMatchesReference) {
  const Instance inst = make_instance("ieee123");
  AdmmOptions opt;
  opt.eps_rel = 1e-4;
  opt.max_iterations = 200000;
  opt.check_every = 10;
  SolverFreeAdmm admm(inst.problem, opt);
  const AdmmResult res = admm.solve();
  ASSERT_TRUE(res.converged);

  const auto ref = dopf::solver::reference_solve(inst.model);
  ASSERT_EQ(ref.status, dopf::solver::LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, ref.objective,
              5e-3 * (1.0 + std::abs(ref.objective)));
  EXPECT_EQ(inst.model.bound_violation(res.x), 0.0);
}

TEST(EndToEndTest, Ieee123BothMethodsAgree) {
  const Instance inst = make_instance("ieee123");
  AdmmOptions opt;  // paper defaults: rho=100, eps 1e-3
  SolverFreeAdmm ours(inst.problem, opt);
  dopf::baseline::BenchmarkAdmm benchmark(inst.problem, opt);
  const AdmmResult ro = ours.solve();
  const AdmmResult rb = benchmark.solve();
  ASSERT_TRUE(ro.converged);
  ASSERT_TRUE(rb.converged);
  // Same tolerance, same model family: solutions within loose agreement.
  EXPECT_NEAR(ro.objective, rb.objective,
              0.1 * (1.0 + std::abs(ro.objective)));
  // Iteration counts in the same order of magnitude (paper Table V).
  EXPECT_LT(std::abs(std::log10(static_cast<double>(ro.iterations)) -
                     std::log10(static_cast<double>(rb.iterations))),
            1.0);
}

TEST(EndToEndTest, GpuPathMatchesCpuOnIeee123) {
  const Instance inst = make_instance("ieee123");
  AdmmOptions opt;
  opt.max_iterations = 300;
  opt.check_every = 50;
  SolverFreeAdmm cpu(inst.problem, opt);
  dopf::simt::GpuAdmmOptions gopt;
  gopt.admm = opt;
  dopf::simt::GpuSolverFreeAdmm gpu(inst.problem, gopt);
  const AdmmResult rc = cpu.solve();
  const AdmmResult rg = gpu.solve();
  for (std::size_t i = 0; i < rc.x.size(); ++i) {
    ASSERT_EQ(rc.x[i], rg.x[i]);
  }
}

TEST(EndToEndTest, FeederFileRoundTripPreservesSolution) {
  // Save ieee13 to the text format, reload, and verify the OPF optimum is
  // unchanged — the persistence path is faithful end to end.
  const Instance inst = make_instance("ieee13");
  const std::string path = ::testing::TempDir() + "/e2e_ieee13.feeder";
  dopf::feeders::save_feeder(inst.net, path);
  const auto reloaded = dopf::feeders::load_feeder(path);
  const auto model2 = dopf::opf::build_model(reloaded);
  const auto ref1 = dopf::solver::reference_solve(inst.model);
  const auto ref2 = dopf::solver::reference_solve(model2);
  ASSERT_EQ(ref1.status, dopf::solver::LpStatus::kOptimal);
  ASSERT_EQ(ref2.status, dopf::solver::LpStatus::kOptimal);
  EXPECT_NEAR(ref1.objective, ref2.objective, 1e-9);
}

TEST(EndToEndTest, TopologyReconfigurationResolvesQuickly) {
  // The paper motivates component-wise decomposition with dynamically
  // changing topologies: drop a lateral (simulate a switch opening between
  // two ties) and re-solve. The decomposition adapts because components
  // are per-bus/per-line.
  dopf::feeders::SyntheticSpec spec = dopf::feeders::ieee123_spec();
  spec.num_extra_lines = 4;  // ties to toggle
  auto net = dopf::feeders::synthetic_feeder(spec);
  const auto problem_before = dopf::opf::decompose(net);

  AdmmOptions opt;
  SolverFreeAdmm before(problem_before, opt);
  const AdmmResult r1 = before.solve();
  ASSERT_TRUE(r1.converged);

  // "Open" one tie line by raising its impedance sky-high and dropping its
  // limits to ~zero flow (the modeling equivalent of a switch).
  auto& tie = net.line_mutable(static_cast<int>(net.num_lines()) - 1);
  tie.flow_limit = dopf::network::PerPhase<double>::uniform(1e-6);
  net.validate();
  const auto problem_after = dopf::opf::decompose(net);
  EXPECT_EQ(problem_after.num_components(),
            problem_before.num_components());
  SolverFreeAdmm after(problem_after, opt);
  const AdmmResult r2 = after.solve();
  ASSERT_TRUE(r2.converged);
}

TEST(EndToEndTest, SubproblemStatsScaleAsInPaperTable4) {
  // Larger feeders have *smaller* average subproblems when dominated by
  // single-phase laterals (paper: mean m_s 9.08 -> 3.44 going 13 -> 8500).
  const Instance i13 = make_instance("ieee13");
  const Instance mini = make_instance("ieee8500_mini");
  const auto s13 = dopf::opf::subproblem_stats(i13.problem);
  const auto s8500 = dopf::opf::subproblem_stats(mini.problem);
  EXPECT_GT(s13.rows.mean, s8500.rows.mean);
  EXPECT_GT(s13.cols.mean, s8500.cols.mean);
}

TEST(EndToEndTest, RowReductionAblationChangesNothingObservable) {
  // With and without leaf merging, the optimum is the same; only S changes.
  const Instance merged = make_instance("ieee13");
  dopf::opf::DecomposeOptions no_merge;
  no_merge.merge_leaves = false;
  const Instance flat = make_instance("ieee13", no_merge);
  EXPECT_NE(merged.problem.num_components(),
            flat.problem.num_components());
  AdmmOptions opt;
  opt.eps_rel = 1e-4;
  opt.max_iterations = 100000;
  SolverFreeAdmm a(merged.problem, opt);
  SolverFreeAdmm b(flat.problem, opt);
  const AdmmResult ra = a.solve();
  const AdmmResult rb = b.solve();
  ASSERT_TRUE(ra.converged);
  ASSERT_TRUE(rb.converged);
  EXPECT_NEAR(ra.objective, rb.objective,
              1e-2 * (1.0 + std::abs(ra.objective)));
}

}  // namespace
