/// Cross-module integration: the SIMT-simulated GPU backend must handle the
/// multi-period stacked problem (including the large time-coupled storage
/// components) and remain bit-identical to the CPU path.

#include <gtest/gtest.h>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "multiperiod/multiperiod.hpp"
#include "simt/gpu_admm.hpp"

namespace {

TEST(MultiPeriodGpuTest, GpuMatchesCpuOnStackedProblem) {
  const auto net = dopf::feeders::ieee13();
  dopf::multiperiod::MultiPeriodSpec spec;
  spec.periods = 6;
  spec.price = {0.4, 0.4, 1.0, 2.0, 2.0, 1.0};
  dopf::multiperiod::Storage batt;
  batt.name = "b";
  batt.bus = 4;
  batt.charge_max = 0.03;
  batt.discharge_max = 0.03;
  batt.energy_max = 0.2;
  batt.energy_init = 0.1;
  spec.storages.push_back(batt);
  const auto mp = dopf::multiperiod::build_multiperiod(net, spec);

  dopf::core::AdmmOptions opt;
  opt.max_iterations = 400;
  opt.check_every = 100;
  dopf::core::SolverFreeAdmm cpu(mp.problem, opt);
  dopf::simt::GpuAdmmOptions gopt;
  gopt.admm = opt;
  dopf::simt::GpuSolverFreeAdmm gpu(mp.problem, gopt);

  const auto rc = cpu.solve();
  const auto rg = gpu.solve();
  ASSERT_EQ(rc.x.size(), rg.x.size());
  for (std::size_t i = 0; i < rc.x.size(); ++i) {
    ASSERT_EQ(rc.x[i], rg.x[i]) << "entry " << i;
  }
}

TEST(MultiPeriodGpuTest, StorageComponentDominatesKernelSpan) {
  // The storage component's n_s (~T + 6T) far exceeds the per-period
  // component sizes, so with one thread per block it must dominate the
  // local-update kernel span; more threads shrink exactly that bottleneck.
  const auto net = dopf::feeders::ieee13();
  dopf::multiperiod::MultiPeriodSpec spec;
  spec.periods = 12;
  dopf::multiperiod::Storage batt;
  batt.name = "b";
  batt.bus = 4;
  spec.storages.push_back(batt);
  const auto mp = dopf::multiperiod::build_multiperiod(net, spec);

  auto kernel_time = [&](int threads) {
    dopf::core::AdmmOptions opt;
    opt.max_iterations = 10;
    opt.check_every = 100;
    dopf::simt::GpuAdmmOptions gopt;
    gopt.admm = opt;
    gopt.threads_per_block = threads;
    dopf::simt::GpuSolverFreeAdmm gpu(mp.problem, gopt);
    gpu.solve();
    return gpu.kernel_averages().local_update;
  };
  const double t1 = kernel_time(1);
  const double t64 = kernel_time(64);
  EXPECT_GT(t1, 5.0 * t64);  // strong thread-level speedup on the big block
}

}  // namespace
