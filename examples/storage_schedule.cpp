// Multi-period OPF with battery storage: schedule a day of operation on the
// IEEE13-style feeder under a time-of-use price and a residential load
// shape. The battery is a time-coupled component in the same consensus
// decomposition the paper uses for buses and lines — the extension the
// paper's ref [15] (multi-period three-phase distributed OPF) points at.

#include <cstdio>
#include <vector>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "multiperiod/multiperiod.hpp"

int main() {
  const auto net = dopf::feeders::ieee13();

  dopf::multiperiod::MultiPeriodSpec spec;
  spec.periods = 24;
  spec.period_hours = 1.0;
  // Residential double-peak load shape (per-unit of the nominal load).
  spec.load_scale = {0.55, 0.50, 0.48, 0.47, 0.50, 0.60, 0.75, 0.90,
                     0.85, 0.80, 0.78, 0.80, 0.82, 0.80, 0.78, 0.82,
                     0.95, 1.15, 1.30, 1.35, 1.25, 1.05, 0.85, 0.65};
  // Time-of-use tariff: cheap nights, pricey evening peak.
  spec.price.assign(24, 1.0);
  for (int t = 0; t < 7; ++t) spec.price[t] = 0.4;
  for (int t = 17; t < 22; ++t) spec.price[t] = 2.5;

  dopf::multiperiod::Storage batt;
  batt.name = "battery671";
  batt.bus = 4;  // bus 671
  batt.charge_max = 0.04;
  batt.discharge_max = 0.04;
  batt.energy_max = 0.5;
  batt.energy_init = 0.25;
  batt.efficiency = 0.92;
  spec.storages.push_back(batt);

  const auto mp = dopf::multiperiod::build_multiperiod(net, spec);
  std::printf(
      "stacked problem: %zu variables, %zu components over %d periods\n",
      mp.problem.num_vars, mp.problem.num_components(), mp.periods);

  dopf::core::AdmmOptions opt;
  opt.eps_rel = 1e-5;
  opt.max_iterations = 400000;
  opt.relaxation = 1.6;
  opt.check_every = 10;
  dopf::core::SolverFreeAdmm admm(mp.problem, opt);
  const auto res = admm.solve();
  std::printf("ADMM: %s in %d iterations, total cost %.4f\n\n",
              res.converged ? "converged" : "NOT converged", res.iterations,
              res.objective);

  std::printf("%4s %7s %7s | %10s %10s\n", "hour", "load", "price",
              "batt [kW]", "SOC [kWh]");
  for (int t = 0; t < mp.periods; ++t) {
    const double inj = mp.net_injection(res.x, 0, t);
    std::printf("%4d %7.2f %7.2f | %+10.4f %10.4f  %s\n", t,
                spec.load_scale[t], spec.price[t], inj, mp.soc(res.x, 0, t),
                inj < -1e-3   ? "charging"
                : inj > 1e-3  ? "discharging"
                              : "");
  }
  std::printf(
      "\nexpected: charge through the cheap night, discharge into the "
      "evening peak,\nfinish at or above the initial state of charge.\n");
  return 0;
}
