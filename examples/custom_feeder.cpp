// Build a feeder programmatically with the public network API, persist it in
// the text exchange format, reload it, and solve the OPF — the workflow a
// downstream user follows to run their own system through the library.

#include <cstdio>

#include "core/admm.hpp"
#include "feeders/feeder_io.hpp"
#include "network/network.hpp"
#include "opf/decompose.hpp"
#include "solver/reference.hpp"

using namespace dopf::network;

int main() {
  // --- A small rural feeder: 3-phase trunk, single-phase laterals,
  // one service transformer, a wye and a delta load, plus a wind DER.
  Network net;

  Bus sub;
  sub.name = "substation";
  sub.w_min = PerPhase<double>::uniform(1.0);
  sub.w_max = PerPhase<double>::uniform(1.0);
  const int b0 = net.add_bus(sub);

  Bus b;
  b.name = "junction";
  const int b1 = net.add_bus(b);
  b.name = "village";
  const int b2 = net.add_bus(b);
  b.name = "farm";
  b.phases = PhaseSet::a();
  const int b3 = net.add_bus(b);
  b.name = "mill";
  b.phases = PhaseSet::abc();
  const int b4 = net.add_bus(b);

  auto line = [&](const char* name, int from, int to, PhaseSet ph, double r,
                  double x, bool xfmr = false) {
    Line l;
    l.name = name;
    l.from_bus = from;
    l.to_bus = to;
    l.phases = ph;
    for (Phase p : ph.phases()) {
      for (Phase q : ph.phases()) {
        l.r(p, q) = p == q ? r : 0.2 * r;
        l.x(p, q) = p == q ? x : 0.25 * x;
      }
    }
    l.is_transformer = xfmr;
    net.add_line(l);
  };
  line("trunk1", b0, b1, PhaseSet::abc(), 0.004, 0.009);
  line("trunk2", b1, b2, PhaseSet::abc(), 0.006, 0.012);
  line("lateral", b1, b3, PhaseSet::a(), 0.02, 0.03);
  line("xfmr", b2, b4, PhaseSet::abc(), 0.002, 0.012, /*xfmr=*/true);

  Generator slack;
  slack.name = "grid";
  slack.bus = b0;
  net.add_generator(slack);
  Generator wind;
  wind.name = "wind";
  wind.bus = b2;
  wind.p_max = PerPhase<double>::uniform(0.3);
  wind.q_min = PerPhase<double>::uniform(-0.1);
  wind.q_max = PerPhase<double>::uniform(0.1);
  wind.cost = 0.1;
  net.add_generator(wind);

  Load village;
  village.name = "village";
  village.bus = b2;
  village.p_ref = PerPhase<double>::uniform(0.25);
  village.q_ref = PerPhase<double>::uniform(0.1);
  village.alpha = PerPhase<double>::uniform(1.0);  // constant current
  village.beta = PerPhase<double>::uniform(1.0);
  net.add_load(village);

  Load farm;
  farm.name = "farm";
  farm.bus = b3;
  farm.phases = PhaseSet::a();
  farm.p_ref = PerPhase<double>::uniform(0.08);
  farm.q_ref = PerPhase<double>::uniform(0.03);
  net.add_load(farm);

  Load mill;  // three-phase delta-connected motor load
  mill.name = "mill";
  mill.bus = b4;
  mill.connection = Connection::kDelta;
  mill.p_ref = PerPhase<double>::uniform(0.15);
  mill.q_ref = PerPhase<double>::uniform(0.09);
  net.add_load(mill);

  net.validate();
  std::printf("built: %s\n", net.summary().c_str());

  // --- Persist and reload through the exchange format.
  const std::string path = "/tmp/custom_feeder_example.feeder";
  dopf::feeders::save_feeder(net, path);
  const Network reloaded = dopf::feeders::load_feeder(path);
  std::printf("round-tripped through %s: %s\n", path.c_str(),
              reloaded.summary().c_str());

  // --- Solve distributed OPF and cross-check with the reference LP.
  const auto model = dopf::opf::build_model(reloaded);
  const auto problem = dopf::opf::decompose(reloaded, model);
  dopf::core::AdmmOptions opt;
  opt.eps_rel = 1e-5;
  dopf::core::SolverFreeAdmm admm(problem, opt);
  const auto res = admm.solve();
  const auto ref = dopf::solver::reference_solve(model);
  std::printf("\nADMM (%d iterations): objective %.6f\n", res.iterations,
              res.objective);
  std::printf("reference LP:         objective %.6f (%s)\n", ref.objective,
              dopf::solver::to_string(ref.status));

  std::printf("\ndispatch (real power, summed over phases):\n");
  for (const auto& g : reloaded.generators()) {
    double total = 0.0;
    for (Phase p : g.phases.phases()) {
      total += res.x[model.vars.gen_p(g.id, p)];
    }
    std::printf("  %-6s %8.4f\n", g.name.c_str(), total);
  }
  return 0;
}
