// Quickstart: load the IEEE13-style feeder, run the solver-free distributed
// ADMM (Algorithm 1 of the paper), and cross-check the result against the
// centralized reference LP solution.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "opf/stats.hpp"
#include "solver/reference.hpp"

int main() {
  // 1. A multi-phase distribution network (buses, lines, wye/delta ZIP
  //    loads, transformers, DER). ieee13() is hand-built; you can also load
  //    one from a file with feeders::load_feeder("my_feeder.txt").
  const dopf::network::Network net = dopf::feeders::ieee13();
  std::printf("%s\n", net.summary().c_str());

  // 2. Build the linearized multi-phase OPF model (7) and decompose it into
  //    per-component subproblems (9).
  const dopf::opf::OpfModel model = dopf::opf::build_model(net);
  const dopf::opf::DistributedProblem problem = dopf::opf::decompose(net, model);
  const auto sizes = dopf::opf::model_sizes(model);
  std::printf("model: %zu equations, %zu variables; %zu components\n",
              sizes.rows, sizes.cols, problem.num_components());

  // 3. Run the solver-free ADMM with the paper's defaults
  //    (rho = 100, eps_rel = 1e-3).
  dopf::core::AdmmOptions options;
  options.eps_rel = 1e-4;  // a bit tighter than the paper for the check below
  dopf::core::SolverFreeAdmm admm(problem, options);
  const dopf::core::AdmmResult result = admm.solve();
  std::printf("ADMM: %s in %d iterations, objective %.6f\n",
              result.converged ? "converged" : "NOT converged",
              result.iterations, result.objective);
  std::printf("      residuals: primal %.3e, dual %.3e\n",
              result.primal_residual, result.dual_residual);

  // 4. Cross-check against the centralized interior-point solution.
  const auto reference = dopf::solver::reference_solve(model);
  std::printf("reference LP (%s): objective %.6f in %d IPM iterations\n",
              dopf::solver::to_string(reference.status), reference.objective,
              reference.iterations);
  std::printf("objective gap: %.3e (relative)\n",
              std::abs(result.objective - reference.objective) /
                  (1.0 + std::abs(reference.objective)));
  std::printf("ADMM solution: max |Ax-b| = %.3e, bound violation = %.3e\n",
              model.equation_residual(result.x),
              model.bound_violation(result.x));
  return 0;
}
