// Dynamic topology reconfiguration — the scenario that motivates
// component-wise decomposition in the paper's introduction.
//
// A distribution operator reconfigures feeders by opening/closing tie
// switches (e.g. after a fault, or to balance load). Because the
// decomposition is per-bus/per-line, a topology change only touches the
// components incident to the switched line; everything else (including the
// precomputed Abar_s/bbar_s of every untouched component) is structurally
// reusable. This example:
//   1. builds a 123-bus-class feeder with tie lines,
//   2. solves the OPF,
//   3. "opens" a tie switch (flow limits to ~0) and doubles a lateral load,
//   4. re-solves, comparing iteration counts and dispatch.

#include <cstdio>

#include "core/admm.hpp"
#include "feeders/synthetic.hpp"
#include "network/network.hpp"
#include "opf/decompose.hpp"
#include "opf/variables.hpp"

using dopf::core::AdmmOptions;
using dopf::core::AdmmResult;
using dopf::core::SolverFreeAdmm;

namespace {

double substation_import(const dopf::network::Network& net,
                         const dopf::opf::OpfModel& model,
                         std::span<const double> x) {
  double total = 0.0;
  for (auto p : net.generator(0).phases.phases()) {
    total += x[model.vars.gen_p(0, p)];
  }
  return total;
}

/// Solve and keep (x, lambda) for warm-starting the next event.
std::pair<std::vector<double>, std::vector<double>> solveable_state(
    const dopf::network::Network& net, const dopf::opf::OpfModel& model) {
  const auto problem = dopf::opf::decompose(net, model);
  AdmmOptions opt;
  SolverFreeAdmm admm(problem, opt);
  const AdmmResult res = admm.solve();
  return {res.x,
          std::vector<double>(admm.lambda().begin(), admm.lambda().end())};
}

AdmmResult solve(const dopf::network::Network& net,
                 const dopf::opf::OpfModel& model, const char* label) {
  const auto problem = dopf::opf::decompose(net, model);
  AdmmOptions opt;
  SolverFreeAdmm admm(problem, opt);
  const AdmmResult res = admm.solve();
  std::printf("%-22s S=%zu  iterations=%5d  objective=%8.4f  import=%.4f\n",
              label, problem.num_components(), res.iterations, res.objective,
              substation_import(net, model, res.x));
  return res;
}

}  // namespace

int main() {
  dopf::feeders::SyntheticSpec spec = dopf::feeders::ieee123_spec();
  spec.num_extra_lines = 6;  // tie switches available for reconfiguration
  dopf::network::Network net = dopf::feeders::synthetic_feeder(spec);
  std::printf("%s\n\n", net.summary().c_str());

  auto model = dopf::opf::build_model(net);
  solve(net, model, "nominal topology");

  // --- Event: a tie switch opens (e.g. protection action).
  const int tie = static_cast<int>(net.num_lines()) - 1;
  auto& sw = net.line_mutable(tie);
  std::printf("\nopening tie '%s' (%s -- %s)\n", sw.name.c_str(),
              net.bus(sw.from_bus).name.c_str(),
              net.bus(sw.to_bus).name.c_str());
  sw.flow_limit = dopf::network::PerPhase<double>::uniform(1e-9);
  net.validate();
  model = dopf::opf::build_model(net);
  solve(net, model, "tie opened");

  // --- Event: load picks up on a lateral (cold-load pickup after
  // restoration) — double every load on the last 20 buses. The variable
  // layout is unchanged, so the operator can warm-start from the previous
  // solution instead of re-solving cold.
  const auto before_pickup = solveable_state(net, model);
  int touched = 0;
  for (std::size_t l = 0; l < net.num_loads(); ++l) {
    auto& load = net.load_mutable(static_cast<int>(l));
    if (load.bus >= static_cast<int>(net.num_buses()) - 20) {
      for (auto p : load.phases.phases()) {
        load.p_ref[p] *= 2.0;
        load.q_ref[p] *= 2.0;
      }
      ++touched;
    }
  }
  std::printf("\ncold-load pickup: doubled %d loads on the far lateral\n",
              touched);
  net.validate();
  model = dopf::opf::build_model(net);
  const AdmmResult cold = solve(net, model, "pickup, cold start");
  {
    const auto problem = dopf::opf::decompose(net, model);
    AdmmOptions opt;
    SolverFreeAdmm admm(problem, opt);
    admm.warm_start(before_pickup.first, before_pickup.second);
    const AdmmResult warm = admm.solve();
    std::printf("%-22s S=%zu  iterations=%5d  objective=%8.4f  (%.1fx "
                "fewer iterations)\n",
                "pickup, warm start", problem.num_components(),
                warm.iterations, warm.objective,
                static_cast<double>(cold.iterations) /
                    std::max(1, warm.iterations));
  }

  std::printf(
      "\nNote: only components incident to the switched line / loaded buses "
      "change;\nthe per-component structure (and the operator's bound boxes) "
      "is reusable across events.\n");
  return 0;
}
