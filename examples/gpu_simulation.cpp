// Drive the SIMT-simulated GPU backend directly: run Algorithm 1 on the
// simulated device, inspect the kernel-time ledger, sweep the
// threads-per-block parameter, and verify the trajectory matches the CPU
// path bit for bit (the paper's Fig. 2 property).
//
// This is the entry point to study "what would this cost on a GPU" without
// owning one; swap DeviceSpec fields to model different hardware.

#include <cstdio>

#include "core/admm.hpp"
#include "feeders/synthetic.hpp"
#include "opf/decompose.hpp"
#include "simt/gpu_admm.hpp"

int main() {
  const auto net =
      dopf::feeders::synthetic_feeder(dopf::feeders::ieee123_spec());
  const auto problem = dopf::opf::decompose(net);
  std::printf("%s\n", net.summary().c_str());

  dopf::core::AdmmOptions opt;  // paper defaults

  // --- CPU reference run.
  dopf::core::SolverFreeAdmm cpu(problem, opt);
  const auto rc = cpu.solve();
  std::printf("\nCPU  : %d iterations, objective %.6f\n", rc.iterations,
              rc.objective);

  // --- Simulated A100 run.
  dopf::simt::GpuAdmmOptions gopt;
  gopt.admm = opt;
  gopt.threads_per_block = 32;
  dopf::simt::GpuSolverFreeAdmm gpu(problem, gopt);
  const auto rg = gpu.solve();
  bool identical = rc.x.size() == rg.x.size();
  for (std::size_t i = 0; identical && i < rc.x.size(); ++i) {
    identical = rc.x[i] == rg.x[i];
  }
  std::printf("GPU  : %d iterations, objective %.6f (%s vs CPU)\n",
              rg.iterations, rg.objective,
              identical ? "bit-identical" : "DIFFERS");

  std::printf("\nsimulated kernel ledger (%s):\n",
              gpu.device().spec().name.c_str());
  for (const auto& [kernel, seconds] : gpu.device().ledger().by_kernel) {
    std::printf("  %-14s %10.4f ms total, %8.3f us/iter\n", kernel.c_str(),
                seconds * 1e3, seconds * 1e6 / rg.iterations);
  }
  std::printf("  %-14s %10.4f ms (h2d/d2h)\n", "transfers",
              gpu.device().ledger().transfer_seconds * 1e3);

  // --- Threads-per-block sweep (the paper's Fig. 3 bottom row).
  std::printf("\nthreads-per-block sweep (avg local-update kernel time):\n");
  for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
    dopf::simt::GpuAdmmOptions swept = gopt;
    swept.threads_per_block = threads;
    swept.admm.max_iterations = 50;
    swept.admm.check_every = 1000;
    dopf::simt::GpuSolverFreeAdmm dev(problem, swept);
    dev.solve();
    std::printf("  T=%2d : %8.3f us/iter\n", threads,
                dev.kernel_averages().local_update * 1e6);
  }

  // --- A slower, smaller device for comparison (e.g. an edge GPU).
  dopf::simt::DeviceSpec edge;
  edge.name = "sim-edge";
  edge.sm_count = 8;
  edge.clock_ghz = 0.9;
  edge.mem_bandwidth_gb_s = 100.0;
  dopf::simt::GpuSolverFreeAdmm small(problem, gopt,
                                      dopf::simt::Device(edge));
  small.solve();
  std::printf("\n%-10s local-update: %8.3f us/iter\n", edge.name.c_str(),
              small.kernel_averages().local_update * 1e6);
  std::printf("%-10s local-update: %8.3f us/iter\n",
              gpu.device().spec().name.c_str(),
              gpu.kernel_averages().local_update * 1e6);
  return 0;
}
