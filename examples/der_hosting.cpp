// DER hosting study on the IEEE13-style feeder: sweep the capacity of a
// photovoltaic plant and watch the optimal dispatch shift from substation
// import to local generation — the renewable-integration use case the
// paper's introduction motivates.
//
// Also reports the feeder's voltage profile (min/max |V|) at each step,
// extracted from the squared-magnitude w variables.

#include <cmath>
#include <cstdio>

#include "core/admm.hpp"
#include "feeders/ieee13.hpp"
#include "opf/decompose.hpp"
#include "opf/variables.hpp"

using dopf::network::PerPhase;
using dopf::network::Phase;

int main() {
  std::printf("PV hosting sweep on the IEEE13-style feeder\n");
  std::printf("%10s %12s %12s %12s %10s %10s\n", "PV cap", "objective",
              "sub import", "PV output", "min |V|", "max |V|");

  for (double cap : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    dopf::network::Network net = dopf::feeders::ieee13();
    // Generator 1 is the PV plant at s680b; give it the swept capacity and
    // make it cheap so the OPF prefers it.
    auto& pv = net.generator_mutable(1);
    pv.p_max = PerPhase<double>::uniform(cap / 3.0);  // per phase
    pv.q_min = PerPhase<double>::uniform(-cap / 6.0);
    pv.q_max = PerPhase<double>::uniform(cap / 6.0);
    pv.cost = 0.05;  // near-free energy
    net.validate();

    const auto model = dopf::opf::build_model(net);
    const auto problem = dopf::opf::decompose(net, model);
    dopf::core::AdmmOptions opt;
    opt.eps_rel = 1e-4;
    opt.max_iterations = 100000;
    dopf::core::SolverFreeAdmm admm(problem, opt);
    const auto res = admm.solve();
    if (!res.converged) {
      std::printf("%10.3f  (did not converge)\n", cap);
      continue;
    }

    double import_p = 0.0, pv_p = 0.0;
    for (Phase p : net.generator(0).phases.phases()) {
      import_p += res.x[model.vars.gen_p(0, p)];
    }
    for (Phase p : net.generator(1).phases.phases()) {
      pv_p += res.x[model.vars.gen_p(1, p)];
    }
    double vmin = 10.0, vmax = 0.0;
    for (const auto& bus : net.buses()) {
      for (Phase p : bus.phases.phases()) {
        const double v = std::sqrt(res.x[model.vars.bus_w(bus.id, p)]);
        vmin = std::min(vmin, v);
        vmax = std::max(vmax, v);
      }
    }
    std::printf("%10.3f %12.5f %12.5f %12.5f %10.4f %10.4f\n", cap,
                res.objective, import_p, pv_p, vmin, vmax);
  }
  std::printf(
      "\nexpected: substation import falls as PV capacity grows, until the "
      "feeder's\nload (plus voltage-band limits) saturates the benefit.\n");
  return 0;
}
